// Command confserved runs ConfigSynth as a long-lived HTTP synthesis
// service: a bounded job queue drained by a pool of portfolio solvers,
// fronted by a canonical-fingerprint result cache, with per-request
// deadlines, client-disconnect cancellation, and NDJSON streaming of
// intermediate optimization bounds.
//
// Usage:
//
//	confserved [-addr :8732] [-workers 2] [-solver-workers 1]
//	           [-queue 64] [-cache 256] [-sessions 8] [-session-ttl 10m]
//	           [-region-workers 4] [-region-cache 512]
//	           [-timeout 120s] [-max-timeout 10m]
//	           [-journal path] [-journal-sync] [-drain-timeout 10s]
//	           [-node-id n1 -peers n1=http://h1:8732,n2=http://h2:8732]
//	           [-node-id n3 -advertise http://h3:8732 -join http://h1:8732,http://h2:8732]
//	           [-heartbeat 1s] [-suspect-after 3] [-dead-after 6]
//	           [-join-timeout 30s] [-pprof-addr localhost:6060]
//
// With -node-id and -peers, the daemon starts a cluster member (see
// internal/cluster): requests are forwarded to the consistent-hash
// owner of their problem fingerprint, cold misses consult the owner's
// cache, idle nodes steal queued jobs from loaded peers, and each
// node's journal is streamed to its two ring successors so even two
// simultaneous SIGKILLs lose no accepted job.
//
// With -node-id, -advertise, and -join, the daemon joins a running
// cluster through the epoch handshake instead of a static peer list: a
// seed admits it into the epoch+1 membership view and reports which of
// its job IDs the cluster adopted while it was down, so a stale journal
// is reconciled automatically — no manual wipe.
//
// With -journal, every accepted job is recorded in an append-only,
// checksummed write-ahead log before it is enqueued, and every terminal
// result after it completes. Restarting against the same journal
// replays it: proven results re-seed the cache and accepted-but-
// unfinished jobs are re-enqueued, so a crash loses no accepted work.
//
// Endpoints:
//
//	POST /v1/synthesize   problem spec in (Table IV format), design out;
//	                      ?example=1 ?mode= ?timeout= ?async=1 ?stream=1
//	                      (mode=decomp solves by topology decomposition)
//	POST /v1/batch        N named spec variants in one request, solved as
//	                      individual journaled jobs (default mode decomp,
//	                      sharing the region cache); NDJSON results in
//	                      completion order, or ?async=1 for job ids
//	POST /v1/whatif       re-solve a finished job's problem under a
//	                      threshold/link delta on a warm solver session
//	POST /v1/verify       independently validate a design
//	GET  /v1/jobs/{id}    job status; ?stream=1 replays NDJSON events
//	GET  /healthz         liveness (process up)
//	GET  /readyz          readiness (503 while replaying, saturated, or draining)
//	GET  /statsz          queue, cache, journal, and solver counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"configsynth/internal/cluster"
	"configsynth/internal/service"
)

// parsePeers decodes "-peers n1=http://h1:8732,n2=http://h2:8732".
func parsePeers(s string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]string{}
	for _, part := range strings.Split(s, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q (want id=url)", part)
		}
		out[id] = url
	}
	return out, nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "confserved:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until the listener fails or stop is
// signalled (tests pass a stop channel; main wires SIGINT/SIGTERM).
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("confserved", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8732", "listen address")
		workers       = fs.Int("workers", 2, "concurrent synthesis jobs")
		solverWorkers = fs.Int("solver-workers", 1, "portfolio size per job")
		queue         = fs.Int("queue", 64, "job queue depth (full queue returns 429)")
		cacheEntries  = fs.Int("cache", 256, "result cache entries")
		sessions      = fs.Int("sessions", 8, "warm what-if sessions kept for /v1/whatif deltas")
		regionWorkers = fs.Int("region-workers", 4, "concurrently solved regions inside one decomp-mode job")
		regionCache   = fs.Int("region-cache", 512, "region result cache entries shared across decomp-mode jobs")
		sessionTTL    = fs.Duration("session-ttl", 10*time.Minute, "idle eviction for warm what-if sessions")
		timeout       = fs.Duration("timeout", 120*time.Second, "default per-job deadline")
		maxTimeout    = fs.Duration("max-timeout", 10*time.Minute, "cap on client-requested deadlines")
		journal       = fs.String("journal", "", "durable job journal path (empty disables durability)")
		journalSync   = fs.Bool("journal-sync", false, "fsync the journal after every record")
		nodeID        = fs.String("node-id", "", "cluster identity of this node (enables cluster mode with -peers or -join)")
		peers         = fs.String("peers", "", "static cluster member list, id=url pairs: n1=http://h1:8732,n2=http://h2:8732 (must include this node)")
		join          = fs.String("join", "", "comma-separated seed URLs of a running cluster to join via the epoch handshake (requires -node-id and -advertise; replaces -peers)")
		joinTimeout   = fs.Duration("join-timeout", 30*time.Second, "budget for the join handshake before startup fails")
		advertise     = fs.String("advertise", "", "URL peers reach this node at (overrides this node's entry in -peers; required with -join)")
		heartbeat     = fs.Duration("heartbeat", time.Second, "cluster heartbeat interval (liveness, stealing, and WAL-ship pacing)")
		suspectAfter  = fs.Int("suspect-after", 3, "missed heartbeats before a peer is drained")
		deadAfter     = fs.Int("dead-after", 6, "missed heartbeats before takeover of a peer's journal")
		drainTimeout  = fs.Duration("drain-timeout", 10*time.Second, "shutdown budget for in-flight jobs before they are canceled")
		pprofAddr     = fs.String("pprof-addr", "", "debug listener for net/http/pprof profiles (empty disables; bind loopback, e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var seeds []string
	if *join != "" {
		if *nodeID == "" || *advertise == "" {
			return errors.New("-join requires -node-id and -advertise")
		}
		if *peers != "" {
			return errors.New("-join and -peers are mutually exclusive (the handshake learns the member list)")
		}
		for _, s := range strings.Split(*join, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
		if len(seeds) == 0 {
			return errors.New("-join lists no seed URLs")
		}
	} else if (*nodeID == "") != (*peers == "") {
		return errors.New("-node-id and -peers must be set together (or use -join)")
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		return err
	}
	if *advertise != "" && *nodeID != "" {
		if peerMap == nil {
			peerMap = map[string]string{}
		}
		peerMap[*nodeID] = *advertise
	}

	// With -join the worker pool stays held until the handshake has
	// reconciled the journal: a stale replayed job must not start solving
	// before the cluster reports which of its IDs were adopted elsewhere.
	openService := service.Open
	if len(seeds) > 0 {
		openService = service.OpenHeld
	}
	svc, err := openService(service.Config{
		Workers:            *workers,
		SolverWorkers:      *solverWorkers,
		QueueDepth:         *queue,
		CacheEntries:       *cacheEntries,
		SessionEntries:     *sessions,
		SessionTTL:         *sessionTTL,
		RegionWorkers:      *regionWorkers,
		RegionCacheEntries: *regionCache,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		JournalPath:        *journal,
		JournalSync:        *journalSync,
		NodeID:             *nodeID,
	})
	if err != nil {
		return err
	}
	defer svc.Close()

	handler := svc.Handler()
	var node *cluster.Node
	if *nodeID != "" {
		node, err = cluster.New(svc, cluster.Config{
			NodeID:            *nodeID,
			Peers:             peerMap,
			HeartbeatInterval: *heartbeat,
			SuspectAfter:      *suspectAfter,
			DeadAfter:         *deadAfter,
		})
		if err != nil {
			return err
		}
		handler = node.Handler(handler)
		// With -join, Start is deferred until the handshake admits us
		// (below, once the listener is up so peers can reach this node).
		if len(seeds) == 0 {
			node.Start()
		}
		defer node.Stop()
	}

	if *pprofAddr != "" {
		// Separate listener so profiling is never exposed on the service
		// port; the DefaultServeMux carries the net/http/pprof handlers
		// registered by the import above. Live captures of the solver hot
		// path (see EXPERIMENTS.md):
		//
		//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=30
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listener: %w", err)
		}
		fmt.Fprintf(stdout, "confserved pprof listening on %s\n", pln.Addr())
		go func() {
			psrv := &http.Server{Handler: http.DefaultServeMux}
			if err := psrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(stdout, "confserved pprof: %v\n", err)
			}
		}()
		defer pln.Close()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	fmt.Fprintf(stdout, "confserved listening on %s (workers=%d queue=%d cache=%d)\n",
		ln.Addr(), *workers, *queue, *cacheEntries)

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	if len(seeds) > 0 {
		// The listener is up (peers can verify and heartbeat us), so run
		// the handshake: present identity + journal epoch, get back the
		// admitted view and the job IDs the cluster adopted while this
		// node was down, truncate those from the replayed journal, and
		// only then release the workers. A typed refusal (version skew,
		// identity conflict) is fatal — retrying cannot fix it.
		jctx, jcancel := context.WithTimeout(context.Background(), *joinTimeout)
		adopted, jerr := node.Join(jctx, seeds)
		jcancel()
		if jerr != nil {
			srv.Close()
			return fmt.Errorf("joining cluster: %w", jerr)
		}
		if dropped := svc.DropSuperseded(adopted); dropped > 0 {
			fmt.Fprintf(stdout, "confserved: dropped %d stale journal jobs adopted by peers\n", dropped)
		}
		svc.StartWorkers()
		node.Start()
		fmt.Fprintln(stdout, "confserved joined cluster")
	}

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		done := make(chan struct{})
		go func() {
			<-sig
			close(done)
		}()
		stop = done
	}

	select {
	case err := <-errc:
		return err
	case <-stop:
	}
	fmt.Fprintln(stdout, "confserved shutting down")
	// Drain first: the service stops accepting (readyz flips to 503,
	// new submits fail), finishes in-flight jobs within the budget, and
	// journals their results. Only then is the HTTP server closed, so
	// clients of draining jobs still get their responses.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Drain(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(stdout, "confserved drain: %v\n", err)
	}
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}
