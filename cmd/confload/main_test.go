package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestProblemSpecsParseAndAreDeterministic(t *testing.T) {
	for i := 0; i < 12; i++ {
		if problemSpec(i) != problemSpec(i) {
			t.Fatalf("problem %d is not deterministic", i)
		}
		if problemSpec(i) == problemSpec(i+1) && i%3 == (i+1)%3 && i%4 == (i+1)%4 {
			continue // identical shape parameters are allowed to collide
		}
	}
}

func TestLoadRunInProcess(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var out strings.Builder
	err := run([]string{
		"-clients", "4", "-requests", "40", "-problems", "5",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests != 40 || rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Errorf("report: %+v", rep)
	}
	// 5 distinct problems over 40 requests: at least 35 must be hits.
	if rep.CacheHits < 35 {
		t.Errorf("cache hits = %d, want >= 35 (5 problems, 40 requests)", rep.CacheHits)
	}
	if rep.CacheHitRate < 0.8 {
		t.Errorf("hit rate = %.2f", rep.CacheHitRate)
	}
}

func TestPercentile(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lat, 50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(lat, 99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("empty p50 = %v", p)
	}
}
