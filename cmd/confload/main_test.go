package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestProblemSpecsParseAndAreDeterministic(t *testing.T) {
	for i := 0; i < 12; i++ {
		if problemSpec(i) != problemSpec(i) {
			t.Fatalf("problem %d is not deterministic", i)
		}
		if problemSpec(i) == problemSpec(i+1) && i%3 == (i+1)%3 && i%4 == (i+1)%4 {
			continue // identical shape parameters are allowed to collide
		}
	}
}

func TestLoadRunInProcess(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "bench.json")
	var out strings.Builder
	err := run([]string{
		"-clients", "4", "-requests", "40", "-problems", "5",
		"-json", jsonPath,
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.Requests != 40 || rep.P50MS <= 0 || rep.P99MS < rep.P50MS {
		t.Errorf("report: %+v", rep)
	}
	// 5 distinct problems over 40 requests: at least 35 must be hits.
	if rep.CacheHits < 35 {
		t.Errorf("cache hits = %d, want >= 35 (5 problems, 40 requests)", rep.CacheHits)
	}
	if rep.CacheHitRate < 0.8 {
		t.Errorf("hit rate = %.2f", rep.CacheHitRate)
	}
}

func TestBackoffDelayCappedAndFloored(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt < 20; attempt++ {
		d := backoffDelay(rng, attempt, 0)
		if d < 0 || d >= maxBackoff {
			t.Fatalf("attempt %d: delay %v outside [0, %v)", attempt, d, maxBackoff)
		}
	}
	// Retry-After is a floor under the jitter, not a replacement for it.
	const floor = 3 * time.Second
	for i := 0; i < 20; i++ {
		if d := backoffDelay(rng, 0, floor); d < floor || d >= floor+maxBackoff {
			t.Fatalf("delay %v outside [%v, %v)", d, floor, floor+maxBackoff)
		}
	}
}

func TestRetryAfterHint(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		raw  string
		want time.Duration
	}{
		{"", 0}, {"2", 2 * time.Second}, {" 1 ", time.Second},
		{"-3", 0}, {"soon", 0},
	}
	for _, c := range cases {
		if got := retryAfterHint(mk(c.raw)); got != c.want {
			t.Errorf("retryAfterHint(%q) = %v, want %v", c.raw, got, c.want)
		}
	}
}

// TestPostRetries429 drives post against a server that throttles the
// first two attempts: the request must succeed with exactly two
// retries reported, and the Retry-After floor must be honored.
func TestPostRetries429(t *testing.T) {
	var calls atomic.Int64
	var afterFloor atomic.Int64
	var last atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && time.Duration(now-prev) >= time.Second {
			afterFloor.Add(1)
		}
		if n <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprint(w, `{"status":"sat"}`)
	}))
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	epErrs := &endpointErrors{counts: map[string]int{}}
	retries, err := post(rng, []string{srv.URL}, "body", epErrs)
	if err != nil {
		t.Fatal(err)
	}
	if retries != 2 {
		t.Errorf("retries = %d, want 2", retries)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	if afterFloor.Load() != 2 {
		t.Errorf("only %d retries waited out the 1s Retry-After floor, want 2", afterFloor.Load())
	}
}

// TestPostGivesUpAfterMaxAttempts: a permanently throttling server must
// not hold a client forever.
func TestPostGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	rng := rand.New(rand.NewSource(7))
	epErrs := &endpointErrors{counts: map[string]int{}}
	retries, err := post(rng, []string{srv.URL}, "body", epErrs)
	if err == nil {
		t.Fatal("post succeeded against a permanent 503")
	}
	if calls.Load() != maxAttempts {
		t.Errorf("server saw %d calls, want %d", calls.Load(), maxAttempts)
	}
	if retries != maxAttempts-1 {
		t.Errorf("retries = %d, want %d", retries, maxAttempts-1)
	}
}

// TestPostFailsOverOnConnectionRefused points post at a dead endpoint
// first and a live one second: the request must succeed by rotating to
// the live endpoint, and the dead one must show up in the per-endpoint
// error counts.
func TestPostFailsOverOnConnectionRefused(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // free the port: connections are now refused

	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"status":"sat"}`)
	}))
	defer live.Close()

	rng := rand.New(rand.NewSource(7))
	epErrs := &endpointErrors{counts: map[string]int{}}
	retries, err := post(rng, []string{deadURL + "/v1/synthesize?x=1", live.URL + "/v1/synthesize?x=1"}, "body", epErrs)
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Errorf("retries = %d, want 1 (one failover hop)", retries)
	}
	counts := epErrs.snapshot()
	if counts[deadURL] != 1 {
		t.Errorf("per-endpoint errors = %v, want %q -> 1", counts, deadURL)
	}
	if _, ok := counts[live.URL]; ok {
		t.Errorf("live endpoint charged with an error: %v", counts)
	}
}

func TestPercentile(t *testing.T) {
	lat := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(lat, 50); p != 5 {
		t.Errorf("p50 = %v, want 5", p)
	}
	if p := percentile(lat, 99); p != 10 {
		t.Errorf("p99 = %v, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Errorf("empty p50 = %v", p)
	}
}
