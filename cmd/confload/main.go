// Command confload load-tests a confserved instance: N concurrent
// clients replay a fixed-seed pool of synthesis problems and the tool
// reports latency percentiles, retry counts, and the cache hit rate.
//
// Usage:
//
//	confload [-addr http://host:8732] [-clients 8] [-requests 200]
//	         [-problems 10] [-mode solve] [-json BENCH_serve.json]
//	         [-whatif 0] [-allow-errors]
//	         [-targets http://h1:8732,http://h2:8732,http://h3:8732]
//
// With -addr empty an in-process confserved is started on a loopback
// port, so the benchmark is self-contained.
//
// With -targets, the sweep is spread over a cluster: each client pins
// one of the listed endpoints (like clients behind a load balancer)
// and the report's cache/completion deltas are summed across every
// node's /statsz.
//
// With -whatif N, after the load phase one parent problem is solved
// asynchronously and N threshold deltas are posted to /v1/whatif
// against it, measuring the warm-session slider-sweep path: the report
// gains delta latencies and how many deltas reused a warm session.
//
// Backpressure (429) and transient unavailability (503) are retried
// with capped exponential backoff plus full jitter, honoring the
// server's Retry-After header as the floor; retries are reported
// separately from errors so a throttled-but-successful run reads as
// exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"configsynth/internal/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "confload:", err)
		os.Exit(1)
	}
}

// report is the benchmark summary (also the -json payload).
type report struct {
	Addr       string  `json:"addr"`
	Clients    int     `json:"clients"`
	Requests   int     `json:"requests"`
	Problems   int     `json:"problems"`
	Mode       string  `json:"mode"`
	Errors     int     `json:"errors"`
	Retries    int64   `json:"retries"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Throughput float64 `json:"requests_per_sec"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	MaxMS      float64 `json:"max_ms"`

	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	JobsCompleted int64   `json:"jobs_completed"`

	// PerEndpointErrors counts transport failures (connection refused,
	// reset) per -targets endpoint. A dead endpoint is skipped and the
	// request retried elsewhere, so these are visibility, not fatalities.
	PerEndpointErrors map[string]int `json:"per_endpoint_errors,omitempty"`

	// What-if sweep phase (-whatif N), zero-valued when disabled.
	WhatIfRequests int     `json:"whatif_requests,omitempty"`
	WhatIfReused   int     `json:"whatif_reused,omitempty"`
	WhatIfCached   int     `json:"whatif_cached,omitempty"`
	WhatIfP50MS    float64 `json:"whatif_p50_ms,omitempty"`
	WhatIfMaxMS    float64 `json:"whatif_max_ms,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("confload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "confserved base URL (empty: start one in-process)")
		targets  = fs.String("targets", "", "comma-separated confserved base URLs; each client sticks to one (cluster benchmarking; overrides -addr)")
		clients  = fs.Int("clients", 8, "concurrent clients")
		requests = fs.Int("requests", 200, "total requests across all clients")
		problems = fs.Int("problems", 10, "distinct problems in the fixed-seed pool")
		mode     = fs.String("mode", "solve", "query mode (solve|max-isolation|max-usability|min-cost)")
		timeout  = fs.Duration("timeout", 2*time.Minute, "per-request deadline")
		jsonOut  = fs.String("json", "", "write the report as JSON to this file")
		workers  = fs.Int("workers", 2, "in-process server: synthesis workers")
		whatif   = fs.Int("whatif", 0, "after the load phase, post this many threshold deltas to /v1/whatif against one parent job (0 disables)")
		poolHost = fs.Int("pool-hosts", 0, "base host count for pool problems (0: historical 4..6-host shapes); larger networks make each cold solve dominate the request cost")
		allowErr = fs.Bool("allow-errors", false, "count request failures instead of failing the run (chaos testing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients < 1 || *requests < 1 || *problems < 1 {
		return fmt.Errorf("clients, requests, and problems must be positive")
	}

	base := *addr
	if base == "" && *targets == "" {
		svc := service.New(service.Config{Workers: *workers, QueueDepth: *requests + *clients})
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(stdout, "in-process confserved on %s\n", base)
	}
	// The target list models a load balancer's client view of a
	// cluster: each client pins one endpoint (real clients do not
	// rotate per request), and the cluster's fingerprint routing —
	// not client luck — is what concentrates repeat problems on the
	// node that has them cached.
	bases := []string{base}
	if *targets != "" {
		bases = bases[:0]
		for _, t := range strings.Split(*targets, ",") {
			if t = strings.TrimRight(strings.TrimSpace(t), "/"); t != "" {
				bases = append(bases, t)
			}
		}
		if len(bases) == 0 {
			return fmt.Errorf("-targets has no usable URLs")
		}
		base = bases[0]
	}

	// The problem pool is deterministic: problem i is the same spec text
	// on every run, so repeated picks hit the server's canonical cache.
	pool := make([]string, *problems)
	for i := range pool {
		pool[i] = problemSpecSized(i, *poolHost)
	}

	statsBefore, err := fetchStatsAll(bases, stdout)
	if err != nil {
		return fmt.Errorf("statsz: %w (is confserved running?)", err)
	}
	lat := make([]float64, *requests)
	errs := make([]error, *requests)
	var next, failures int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(*requests) {
			return -1
		}
		n := next
		next++
		return int(n)
	}

	start := time.Now()
	var retries int64
	epErrs := &endpointErrors{counts: map[string]int{}}
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(clientIdx int) {
			defer wg.Done()
			// Per-client seeded RNG: jitter differs across clients (so
			// they do not retry in lockstep) but replays identically run
			// to run.
			rng := rand.New(rand.NewSource(int64(clientIdx) + 1))
			// The client pins its endpoint but keeps the rest as an
			// ordered failover list: a connection refused rotates to the
			// next target instead of failing the run.
			urls := make([]string, len(bases))
			for k := range bases {
				urls[k] = fmt.Sprintf("%s/v1/synthesize?mode=%s&timeout=%s",
					bases[(clientIdx+k)%len(bases)], *mode, timeout.String())
			}
			for {
				i := take()
				if i < 0 {
					return
				}
				body := pool[i%len(pool)]
				t0 := time.Now()
				tries, err := post(rng, urls, body, epErrs)
				lat[i] = float64(time.Since(t0).Microseconds()) / 1000
				mu.Lock()
				retries += int64(tries)
				if err != nil {
					errs[i] = err
					failures++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	statsAfter, err := fetchStatsAll(bases, stdout)
	if err != nil {
		return err
	}
	hits := statsAfter.Cache.Hits - statsBefore.Cache.Hits
	misses := statsAfter.Cache.Misses - statsBefore.Cache.Misses

	sort.Float64s(lat)
	rep := report{
		Addr:          base,
		Clients:       *clients,
		Requests:      *requests,
		Problems:      *problems,
		Mode:          *mode,
		Errors:        int(failures),
		Retries:       retries,
		ElapsedSec:    elapsed.Seconds(),
		Throughput:    float64(*requests) / elapsed.Seconds(),
		P50MS:         percentile(lat, 50),
		P95MS:         percentile(lat, 95),
		P99MS:         percentile(lat, 99),
		MaxMS:         lat[len(lat)-1],
		CacheHits:     hits,
		CacheMisses:   misses,
		JobsCompleted: statsAfter.JobsCompleted - statsBefore.JobsCompleted,
	}
	if hits+misses > 0 {
		rep.CacheHitRate = float64(hits) / float64(hits+misses)
	}
	rep.PerEndpointErrors = epErrs.snapshot()

	fmt.Fprintf(stdout, "%d requests, %d clients, %d problems, mode %s\n",
		rep.Requests, rep.Clients, rep.Problems, rep.Mode)
	fmt.Fprintf(stdout, "elapsed %.2fs (%.1f req/s), errors %d, retries %d\n",
		rep.ElapsedSec, rep.Throughput, rep.Errors, rep.Retries)
	fmt.Fprintf(stdout, "latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f\n", rep.P50MS, rep.P95MS, rep.P99MS, rep.MaxMS)
	fmt.Fprintf(stdout, "cache: %d hits / %d misses (hit rate %.1f%%)\n", hits, misses, rep.CacheHitRate*100)
	for _, ep := range sortedKeys(rep.PerEndpointErrors) {
		fmt.Fprintf(stdout, "endpoint %s: %d transport errors (skipped and retried elsewhere)\n",
			ep, rep.PerEndpointErrors[ep])
	}
	if failures > 0 {
		if !*allowErr {
			for i, e := range errs {
				if e != nil {
					return fmt.Errorf("request %d (and %d more): %w", i, failures-1, e)
				}
			}
		}
		for i, e := range errs {
			if e != nil {
				fmt.Fprintf(stdout, "tolerated %d failures (first: request %d: %v)\n", failures, i, e)
				break
			}
		}
	}
	if *whatif > 0 {
		if err := runWhatIfSweep(base, *timeout, *whatif, &rep, stdout); err != nil {
			if !*allowErr {
				return fmt.Errorf("whatif sweep: %w", err)
			}
			fmt.Fprintf(stdout, "tolerated whatif sweep failure: %v\n", err)
		}
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", *jsonOut)
	}
	return nil
}

// runWhatIfSweep drives the incremental what-if path: solve one parent
// problem asynchronously, wait for it, then post n threshold deltas to
// /v1/whatif sequentially (warm sessions are exclusively owned per job,
// so a sequential sweep is the maximal-reuse pattern a slider UI
// produces). Results land in rep's WhatIf fields.
func runWhatIfSweep(base string, timeout time.Duration, n int, rep *report, stdout io.Writer) error {
	// Parent solve: async submit, then poll the job to completion.
	resp, err := http.Post(
		fmt.Sprintf("%s/v1/synthesize?async=1&timeout=%s", base, timeout),
		"text/plain", strings.NewReader(problemSpec(0)))
	if err != nil {
		return err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("parent submit: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	var accepted struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(data, &accepted); err != nil || accepted.JobID == "" {
		return fmt.Errorf("parent submit: bad response %q", strings.TrimSpace(string(data)))
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + accepted.JobID)
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("parent job: status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
		var st struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			return err
		}
		if st.Status == "sat" || st.Status == "unsat" {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("parent job %s still %q after %s", accepted.JobID, st.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}

	url := fmt.Sprintf("%s/v1/whatif?timeout=%s", base, timeout)
	lat := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Distinct isolation targets for n <= 100, so the sweep measures
		// the session path rather than pure fingerprint-cache hits.
		iso := (i * 97) % 100
		body := fmt.Sprintf(`{"parent":%q,"delta":{"isolation_tenths":%d}}`, accepted.JobID, iso)
		t0 := time.Now()
		resp, err := http.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("delta %d: status %d: %s", i, resp.StatusCode, strings.TrimSpace(string(data)))
		}
		var res struct {
			Status  string `json:"status"`
			Session string `json:"session"`
			Cached  bool   `json:"cached"`
		}
		if err := json.Unmarshal(data, &res); err != nil {
			return err
		}
		if res.Status != "sat" && res.Status != "unsat" {
			return fmt.Errorf("delta %d: unexpected status %q", i, res.Status)
		}
		rep.WhatIfRequests++
		if res.Session == "reused" {
			rep.WhatIfReused++
		}
		if res.Cached {
			rep.WhatIfCached++
		}
	}
	sort.Float64s(lat)
	rep.WhatIfP50MS = percentile(lat, 50)
	rep.WhatIfMaxMS = lat[len(lat)-1]
	fmt.Fprintf(stdout, "whatif: %d deltas on job parent, %d reused warm sessions, %d cache hits, p50=%.2fms max=%.2fms\n",
		rep.WhatIfRequests, rep.WhatIfReused, rep.WhatIfCached, rep.WhatIfP50MS, rep.WhatIfMaxMS)
	return nil
}

// Retry policy for backpressure responses.
const (
	maxAttempts = 8
	baseBackoff = 50 * time.Millisecond
	maxBackoff  = 2 * time.Second
)

// backoffDelay computes the sleep before retry number attempt (0-based):
// the server's Retry-After floor plus full jitter over an exponentially
// growing, capped window. Full jitter (rather than equal jitter) spreads
// the retry herd across the whole window, which matters when every
// client got the same 429 at the same instant.
func backoffDelay(rng *rand.Rand, attempt int, retryAfter time.Duration) time.Duration {
	window := baseBackoff << attempt
	if window > maxBackoff {
		window = maxBackoff
	}
	return retryAfter + time.Duration(rng.Int63n(int64(window)))
}

// retryAfterHint parses a Retry-After header (delta-seconds form; the
// HTTP-date form is not used by confserved) into the backoff floor.
func retryAfterHint(resp *http.Response) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// endpointErrors counts transport failures per endpoint across all
// clients, for the per-endpoint section of the summary.
type endpointErrors struct {
	mu     sync.Mutex
	counts map[string]int
}

func (e *endpointErrors) bump(url string) {
	// Strip the query so counts key on the endpoint, not the request.
	if i := strings.IndexByte(url, '?'); i >= 0 {
		url = url[:i]
	}
	url = strings.TrimSuffix(url, "/v1/synthesize")
	e.mu.Lock()
	e.counts[url]++
	e.mu.Unlock()
}

func (e *endpointErrors) snapshot() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.counts) == 0 {
		return nil
	}
	out := make(map[string]int, len(e.counts))
	for k, v := range e.counts {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// post submits one request, retrying 429/503 backpressure with jittered
// backoff against the same endpoint and rotating to the next endpoint in
// urls on a transport failure (connection refused, reset): one dead
// cluster node costs the affected requests a retry, not the whole run.
// It returns how many retries were spent alongside the final outcome.
func post(rng *rand.Rand, urls []string, body string, epErrs *endpointErrors) (retries int, err error) {
	idx := 0
	for attempt := 0; ; attempt++ {
		url := urls[idx%len(urls)]
		resp, err := http.Post(url, "text/plain", strings.NewReader(body))
		if err != nil {
			epErrs.bump(url)
			if attempt+1 >= maxAttempts {
				return attempt, fmt.Errorf("after %d attempts: %w", attempt+1, err)
			}
			idx++
			time.Sleep(backoffDelay(rng, attempt, 0))
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			var res struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(data, &res); err != nil {
				return attempt, err
			}
			if res.Status != "sat" {
				return attempt, fmt.Errorf("unexpected status %q", res.Status)
			}
			return attempt, nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			if attempt+1 >= maxAttempts {
				return attempt, fmt.Errorf("status %d after %d attempts: %s",
					resp.StatusCode, attempt+1, strings.TrimSpace(string(data)))
			}
			time.Sleep(backoffDelay(rng, attempt, retryAfterHint(resp)))
		default:
			return attempt, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
		}
	}
}

func fetchStats(base string) (*service.Stats, error) {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("statsz status %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// fetchStatsAll sums the counters the report derives deltas from across
// every target, so cache-hit and completion accounting stays correct
// when the sweep is spread over a cluster. An unreachable endpoint is
// skipped (its counters just drop out of the deltas — fine for chaos
// runs where nodes die mid-benchmark); only all endpoints dead is an
// error.
func fetchStatsAll(bases []string, stdout io.Writer) (*service.Stats, error) {
	var agg service.Stats
	reached := 0
	var lastErr error
	for _, b := range bases {
		st, err := fetchStats(b)
		if err != nil {
			lastErr = fmt.Errorf("%s: %w", b, err)
			fmt.Fprintf(stdout, "statsz unreachable at %s (skipped): %v\n", b, err)
			continue
		}
		reached++
		agg.JobsCompleted += st.JobsCompleted
		agg.JobsFailed += st.JobsFailed
		agg.Cache.Hits += st.Cache.Hits
		agg.Cache.Misses += st.Cache.Misses
		agg.PeerFillHits += st.PeerFillHits
		agg.JobsStolenCompleted += st.JobsStolenCompleted
	}
	if reached == 0 {
		return nil, lastErr
	}
	return &agg, nil
}

// percentile reads the p-th percentile from sorted latencies.
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)*p + 99) / 100
	if i > 0 {
		i--
	}
	return sorted[i]
}

// problemSpec renders the i-th pool problem: a small two-tier network
// whose shape (host count, demands, sliders) varies deterministically
// with i, so run N always replays the same workload. The shape cycle
// has period 12; the cost budget shifts every cycle so larger pools
// (cache-miss-heavy cluster benchmarks) keep producing distinct
// fingerprints while the first twelve problems stay bit-identical to
// historical runs.
func problemSpec(i int) string { return problemSpecSized(i, 0) }

// problemSpecSized is problemSpec with an overridable base host count:
// baseHosts 0 keeps the historical 4..6-host shapes, anything larger
// grows the network so a cold solve costs real CPU relative to the
// HTTP round trip (what a cluster cache benchmark needs).
func problemSpecSized(i, baseHosts int) string {
	hosts := 4 + i%3 // 4..6 hosts
	if baseHosts > 0 {
		hosts = baseHosts + i%3
	}
	routers := 2
	var b strings.Builder
	b.WriteString("devices 3\norder 1 2 2\norder 2 3 2\ncosts 5 8 6\n")
	fmt.Fprintf(&b, "nodes %d %d\n", hosts, routers)
	for h := 1; h <= hosts; h++ {
		fmt.Fprintf(&b, "link %d %d\n", h, hosts+1+h%routers)
	}
	fmt.Fprintf(&b, "link %d %d\n", hosts+1, hosts+2)
	b.WriteString("services 1\n")
	fmt.Fprintf(&b, "require 1 %d\n", 2+i%(hosts-1))
	if hosts > 4 {
		fmt.Fprintf(&b, "require 2 %d\n", hosts)
	}
	fmt.Fprintf(&b, "sliders %d.5 %d %d\n", 1+i%3, 3+i%4, 40+i/12)
	return b.String()
}
