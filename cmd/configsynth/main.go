// Command configsynth synthesizes network security configurations from a
// problem description file, reproducing the ConfigSynth tool of the
// paper.
//
// Usage:
//
//	configsynth -f problem.txt [-o design.txt] [-dot design.dot]
//	configsynth -f problem.txt -assist
//	configsynth -f problem.txt -explain
//	configsynth -example [-assist|-explain|...]
//
// The input format mirrors the paper's Table IV (see internal/spec). On
// SAT the tool prints the isolation pattern per flow and the device
// placements; on UNSAT with -explain it runs the paper's Algorithm 1 and
// suggests threshold relaxations.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"configsynth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "configsynth:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("configsynth", flag.ContinueOnError)
	var (
		inFile  = fs.String("f", "", "problem description file (Table IV format)")
		example = fs.Bool("example", false, "use the paper's built-in example problem")
		outFile = fs.String("o", "", "write the design to this file (default stdout)")
		dotFile = fs.String("dot", "", "write a Graphviz rendering of the placements")
		assist  = fs.Bool("assist", false, "print slider assistance (paper Table III)")
		explain = fs.Bool("explain", false, "on UNSAT, run Algorithm 1 and suggest relaxations")
		maxIso  = fs.Bool("max-isolation", false, "maximize isolation under the usability/cost sliders")
		budget  = fs.Int64("probe-budget", 0, "conflict budget per optimization probe (0 = default)")
		timeout = fs.Duration("timeout", 0, "wall-clock deadline for solving (e.g. 30s; 0 = none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		prob *configsynth.Problem
		err  error
	)
	switch {
	case *example:
		prob = configsynth.PaperExample()
	case *inFile != "":
		f, ferr := os.Open(*inFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		prob, err = configsynth.ParseProblem(f)
		if err != nil {
			return err
		}
	default:
		return errors.New("either -f <file> or -example is required")
	}
	if *budget != 0 {
		prob.Options.ProbeBudget = *budget
	}

	syn, err := configsynth.New(prob)
	if err != nil {
		return err
	}

	if *assist {
		entries, err := syn.Assist([]int{0, 25, 50, 75, 100})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "# slider assistance (paper Table III)")
		for _, e := range entries {
			fmt.Fprintln(stdout, e)
		}
		return nil
	}

	// A -timeout deadline rides the solvers' cooperative interrupts: on
	// expiry the in-flight probe aborts and we exit non-zero.
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var design *configsynth.Design
	if *maxIso {
		iso, d, merr := syn.MaxIsolationContext(ctx, prob.Thresholds.UsabilityTenths, prob.Thresholds.CostBudget)
		if merr != nil {
			err = merr
		} else if ctx.Err() == nil {
			fmt.Fprintf(stdout, "# maximum isolation %.2f (usability >= %.1f, cost <= $%dK)\n",
				iso, float64(prob.Thresholds.UsabilityTenths)/10, prob.Thresholds.CostBudget)
			design = d
		}
	} else {
		design, err = syn.SolveContext(ctx)
	}
	// -timeout is a hard deadline: even when the descent salvaged an
	// anytime best-found design, an expired context fails the run.
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("no proven design within the %v deadline (raise -timeout, or lower -probe-budget for an anytime answer)", *timeout)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("no design within the %v deadline (raise -timeout, or lower -probe-budget for an anytime answer)", *timeout)
		}
		if !configsynth.IsUnsat(err) {
			return err
		}
		fmt.Fprintln(stdout, "unsat:", err)
		if !*explain {
			fmt.Fprintln(stdout, "re-run with -explain for relaxation suggestions")
			return nil
		}
		ex, exErr := syn.Explain()
		if exErr != nil {
			return exErr
		}
		fmt.Fprintln(stdout, "# unsat-core analysis (paper Algorithm 1)")
		for _, r := range ex.Relaxations {
			fmt.Fprintln(stdout, r)
		}
		return nil
	}

	out := stdout
	if *outFile != "" {
		f, ferr := os.Create(*outFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	if err := configsynth.WriteDesign(out, prob, design); err != nil {
		return err
	}
	if *dotFile != "" {
		labels := configsynth.DeviceLabels(prob, design)
		if err := os.WriteFile(*dotFile, []byte(prob.Network.DOT(labels)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
