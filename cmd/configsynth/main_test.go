package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testInput = `
nodes 4 2
link 1 5
link 2 5
link 3 6
link 4 6
link 5 6
require 1 3
sliders 2 3 40
`

func writeInput(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "problem.txt")
	if err := os.WriteFile(path, []byte(testInput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunRequiresInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -f must error")
	}
}

func TestRunSynthesizesFromFile(t *testing.T) {
	path := writeInput(t)
	var out strings.Builder
	if err := run([]string{"-f", path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"synthesized security design", "device placements"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWritesOutputAndDot(t *testing.T) {
	path := writeInput(t)
	dir := t.TempDir()
	outFile := filepath.Join(dir, "design.txt")
	dotFile := filepath.Join(dir, "design.dot")
	var out strings.Builder
	if err := run([]string{"-f", path, "-o", outFile, "-dot", dotFile}, &out); err != nil {
		t.Fatal(err)
	}
	design, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(design), "device placements") {
		t.Error("design file incomplete")
	}
	dot, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "graph network") {
		t.Error("dot file incomplete")
	}
}

func TestRunAssist(t *testing.T) {
	path := writeInput(t)
	var out strings.Builder
	if err := run([]string{"-f", path, "-assist", "-probe-budget", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "slider assistance") {
		t.Errorf("assist output wrong:\n%s", out.String())
	}
}

func TestRunUnsatExplain(t *testing.T) {
	// Contradictory sliders: isolation 10 with usability 10.
	input := strings.Replace(testInput, "sliders 2 3 40", "sliders 10 10 40", 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(path, []byte(input), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-f", path, "-explain", "-probe-budget", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "unsat") || !strings.Contains(got, "Algorithm 1") {
		t.Errorf("explain output wrong:\n%s", got)
	}
}

func TestRunExampleMaxIsolation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-example", "-max-isolation", "-probe-budget", "2000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "maximum isolation") {
		t.Errorf("max-isolation output wrong:\n%s", out.String())
	}
}

func TestRunTimeoutExpiry(t *testing.T) {
	// An unlimited probe budget on the paper example's max-isolation
	// descent cannot finish in a millisecond, so the deadline must end
	// the run with a clear error (main turns that into a non-zero exit).
	var out strings.Builder
	err := run([]string{"-example", "-max-isolation", "-probe-budget", "-1", "-timeout", "1ms"}, &out)
	if err == nil {
		t.Fatal("1ms deadline must fail the run")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error %q does not mention the deadline", err)
	}
}

func TestRunTimeoutGenerousSucceeds(t *testing.T) {
	path := writeInput(t)
	var out strings.Builder
	if err := run([]string{"-f", path, "-timeout", "2m"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "synthesized security design") {
		t.Errorf("output wrong:\n%s", out.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-f", "/nonexistent/problem.txt"}, &out); err == nil {
		t.Fatal("missing file must error")
	}
}
