// Command confsweep regenerates the paper's evaluation tables and
// figures as CSV.
//
// Usage:
//
//	confsweep -exp fig3a          one experiment
//	confsweep -exp all            every experiment (slow)
//	confsweep -list               list experiment names
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"configsynth/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "confsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("confsweep", flag.ContinueOnError)
	var (
		exp  = fs.String("exp", "", "experiment name, or 'all'")
		list = fs.Bool("list", false, "list experiment names")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp <name> required; names: %s", strings.Join(experiments.Names(), ", "))
	}
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.All()
	for _, name := range names {
		fn, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; names: %s", name, strings.Join(experiments.Names(), ", "))
		}
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Fprintf(stdout, "# %s\n", res.Name)
		fmt.Fprintln(stdout, strings.Join(res.Header, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(stdout, strings.Join(row, ","))
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
