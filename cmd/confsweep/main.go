// Command confsweep regenerates the paper's evaluation tables and
// figures as CSV.
//
// Usage:
//
//	confsweep -exp fig3a          one experiment
//	confsweep -exp all            every experiment (slow)
//	confsweep -list               list experiment names
//	confsweep -exp fig4a -workers 4
//	                              sweep data points on 4 goroutines and
//	                              race 4 diversified solvers per probe
//	confsweep -exp fig3a -json -outdir out
//	                              also write out/BENCH_fig3a.json with
//	                              wall-clock and solver statistics
//	confsweep -exp fig3a -verify  re-validate every model and unsat core
//	                              (equivalent to CONFSYNTH_VERIFY=1)
//	confsweep -batch -hosts 100 -variants 20 -seed 1
//	                              decomposed batch sweep: generate a
//	                              multi-region campus problem, derive N
//	                              threshold variants, and solve them
//	                              through one region-caching decomposed
//	                              solver; -json writes BENCH_decomp.json
//	                              with per-variant rows and the region
//	                              cache hit rate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"configsynth/internal/core"
	"configsynth/internal/decomp"
	"configsynth/internal/experiments"
	"configsynth/internal/netgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "confsweep:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of a BENCH_<experiment>.json file.
type benchReport struct {
	Name          string                   `json:"name"`
	SweepWorkers  int                      `json:"sweep_workers"`
	SolverWorkers int                      `json:"solver_workers"`
	ElapsedMS     float64                  `json:"elapsed_ms"`
	Header        []string                 `json:"header"`
	Rows          [][]string               `json:"rows"`
	Solver        experiments.SolverTotals `json:"solver"`
	// Region-cache totals of a -batch sweep (absent otherwise).
	RegionHits    uint64   `json:"region_hits,omitempty"`
	RegionMisses  uint64   `json:"region_misses,omitempty"`
	RegionHitRate *float64 `json:"region_hit_rate,omitempty"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("confsweep", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment name, or 'all'")
		list    = fs.Bool("list", false, "list experiment names")
		workers = fs.Int("workers", 1, "sweep data points concurrently and race this many diversified solvers per probe")
		jsonOut = fs.Bool("json", false, "also write BENCH_<experiment>.json with wall-clock and solver stats")
		outdir  = fs.String("outdir", ".", "directory for -json reports")
		verify  = fs.Bool("verify", false, "re-validate every model and unsat core the solvers produce (same switch as CONFSYNTH_VERIFY=1); a failed check aborts the sweep")

		batch      = fs.Bool("batch", false, "decomposed batch sweep over a generated campus problem (ignores -exp)")
		hosts      = fs.Int("hosts", 100, "campus size for -batch")
		variants   = fs.Int("variants", 20, "variant count for -batch")
		seed       = fs.Int64("seed", 1, "campus RNG seed for -batch")
		verifyEach = fs.Bool("verify-stitch", false, "re-verify every stitched -batch design against the monolithic problem")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verify {
		// The env var is the canonical switch (core.Options reads it when
		// each experiment builds its problems), so the flag just sets it.
		if err := os.Setenv("CONFSYNTH_VERIFY", "1"); err != nil {
			return err
		}
	}
	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *batch {
		experiments.SetWorkers(*workers, *workers)
		return runBatch(stdout, batchConfig{
			hosts:    *hosts,
			variants: *variants,
			seed:     *seed,
			verify:   *verifyEach,
			jsonOut:  *jsonOut,
			outdir:   *outdir,
		})
	}
	if *exp == "" {
		return fmt.Errorf("-exp <name> required; names: %s", strings.Join(experiments.Names(), ", "))
	}
	experiments.SetWorkers(*workers, *workers)
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.All()
	for _, name := range names {
		fn, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; names: %s", name, strings.Join(experiments.Names(), ", "))
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "# %s\n", res.Name)
		fmt.Fprintln(stdout, strings.Join(res.Header, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(stdout, strings.Join(row, ","))
		}
		fmt.Fprintln(stdout)
		if *jsonOut {
			if err := writeBench(*outdir, res, elapsed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// batchConfig parameterizes the -batch sweep.
type batchConfig struct {
	hosts    int
	variants int
	seed     int64
	verify   bool
	jsonOut  bool
	outdir   string
}

// runBatch is the -batch mode: generate one multi-region campus
// problem, derive threshold variants (every variant moves the cost
// budget, every tenth block also moves the isolation slider), and solve
// them all through a single decomposed solver. Subproblem fingerprints
// never include the budget, so budget-only variants re-use every region
// from the cache and the sweep's cost is dominated by the few
// slider-class cold solves — the per-variant hit/miss columns and the
// final hit rate make that visible.
func runBatch(stdout io.Writer, cfg batchConfig) error {
	if cfg.hosts < 4 {
		return fmt.Errorf("-batch needs -hosts >= 4, got %d", cfg.hosts)
	}
	if cfg.variants < 1 {
		return fmt.Errorf("-batch needs -variants >= 1, got %d", cfg.variants)
	}
	baseBudget := int64(cfg.hosts) * 20
	base, err := netgen.Campus(netgen.CampusConfig{
		Hosts: cfg.hosts,
		Seed:  cfg.seed,
		Thresholds: core.Thresholds{
			IsolationTenths: 30,
			UsabilityTenths: 40,
			CostBudget:      baseBudget,
		},
	})
	if err != nil {
		return err
	}
	sweep, solverW := experiments.Workers()
	solver := decomp.New(decomp.Options{
		Workers:      sweep,
		VerifyStitch: cfg.verify,
	})

	res := experiments.Result{
		Name:   "decomp",
		Header: []string{"variant", "iso", "budget", "status", "cost", "regions", "region_hits", "region_misses", "repaired", "elapsed_ms"},
	}
	start := time.Now()
	for i := 0; i < cfg.variants; i++ {
		q := *base
		q.Thresholds = core.Thresholds{
			IsolationTenths: 30 + 5*((i/10)%2),
			UsabilityTenths: 40,
			CostBudget:      baseBudget + int64(10*i),
		}
		r, err := solver.Solve(context.Background(), &q)
		if err != nil {
			return fmt.Errorf("variant %d: %w", i, err)
		}
		status, cost := "sat", int64(0)
		if r.Unsat {
			status = "unsat"
			if r.Conservative {
				status = "unsat?"
			}
		} else {
			cost = r.Design.Cost
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("v%d", i),
			fmt.Sprintf("%.1f", float64(q.Thresholds.IsolationTenths)/10),
			fmt.Sprintf("%d", q.Thresholds.CostBudget),
			status,
			fmt.Sprintf("%d", cost),
			fmt.Sprintf("%d", len(r.Regions)),
			fmt.Sprintf("%d", r.Hits),
			fmt.Sprintf("%d", r.Misses),
			fmt.Sprintf("%d", r.Repaired),
			fmt.Sprintf("%d", r.ElapsedMS),
		})
		res.Totals.Add(r.Stats)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "# %s (hosts=%d variants=%d seed=%d)\n", res.Name, cfg.hosts, cfg.variants, cfg.seed)
	fmt.Fprintln(stdout, strings.Join(res.Header, ","))
	for _, row := range res.Rows {
		fmt.Fprintln(stdout, strings.Join(row, ","))
	}
	cs := solver.CacheStats()
	rate := 0.0
	if cs.Hits+cs.Misses > 0 {
		rate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	fmt.Fprintf(stdout, "# region cache: hits=%d misses=%d rate=%.1f%%\n", cs.Hits, cs.Misses, 100*rate)

	if cfg.jsonOut {
		report := benchReport{
			Name:          res.Name,
			SweepWorkers:  sweep,
			SolverWorkers: solverW,
			ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
			Header:        res.Header,
			Rows:          res.Rows,
			Solver:        res.Totals,
			RegionHits:    cs.Hits,
			RegionMisses:  cs.Misses,
			RegionHitRate: &rate,
		}
		if err := writeReport(cfg.outdir, report); err != nil {
			return err
		}
	}
	return nil
}

// writeBench writes the experiment's benchmark report to
// <outdir>/BENCH_<name>.json.
func writeBench(outdir string, res experiments.Result, elapsed time.Duration) error {
	sweep, solver := experiments.Workers()
	return writeReport(outdir, benchReport{
		Name:          res.Name,
		SweepWorkers:  sweep,
		SolverWorkers: solver,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
		Header:        res.Header,
		Rows:          res.Rows,
		Solver:        res.Totals,
	})
}

// writeReport marshals one benchmark report to
// <outdir>/BENCH_<name>.json.
func writeReport(outdir string, report benchReport) error {
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(outdir, "BENCH_"+report.Name+".json"), data, 0o644)
}
