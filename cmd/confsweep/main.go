// Command confsweep regenerates the paper's evaluation tables and
// figures as CSV.
//
// Usage:
//
//	confsweep -exp fig3a          one experiment
//	confsweep -exp all            every experiment (slow)
//	confsweep -list               list experiment names
//	confsweep -exp fig4a -workers 4
//	                              sweep data points on 4 goroutines and
//	                              race 4 diversified solvers per probe
//	confsweep -exp fig3a -json -outdir out
//	                              also write out/BENCH_fig3a.json with
//	                              wall-clock and solver statistics
//	confsweep -exp fig3a -verify  re-validate every model and unsat core
//	                              (equivalent to CONFSYNTH_VERIFY=1)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"configsynth/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "confsweep:", err)
		os.Exit(1)
	}
}

// benchReport is the schema of a BENCH_<experiment>.json file.
type benchReport struct {
	Name          string                   `json:"name"`
	SweepWorkers  int                      `json:"sweep_workers"`
	SolverWorkers int                      `json:"solver_workers"`
	ElapsedMS     float64                  `json:"elapsed_ms"`
	Header        []string                 `json:"header"`
	Rows          [][]string               `json:"rows"`
	Solver        experiments.SolverTotals `json:"solver"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("confsweep", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "", "experiment name, or 'all'")
		list    = fs.Bool("list", false, "list experiment names")
		workers = fs.Int("workers", 1, "sweep data points concurrently and race this many diversified solvers per probe")
		jsonOut = fs.Bool("json", false, "also write BENCH_<experiment>.json with wall-clock and solver stats")
		outdir  = fs.String("outdir", ".", "directory for -json reports")
		verify  = fs.Bool("verify", false, "re-validate every model and unsat core the solvers produce (same switch as CONFSYNTH_VERIFY=1); a failed check aborts the sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *verify {
		// The env var is the canonical switch (core.Options reads it when
		// each experiment builds its problems), so the flag just sets it.
		if err := os.Setenv("CONFSYNTH_VERIFY", "1"); err != nil {
			return err
		}
	}
	if *list {
		for _, name := range experiments.Names() {
			fmt.Fprintln(stdout, name)
		}
		return nil
	}
	if *exp == "" {
		return fmt.Errorf("-exp <name> required; names: %s", strings.Join(experiments.Names(), ", "))
	}
	experiments.SetWorkers(*workers, *workers)
	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	registry := experiments.All()
	for _, name := range names {
		fn, ok := registry[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q; names: %s", name, strings.Join(experiments.Names(), ", "))
		}
		start := time.Now()
		res, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(stdout, "# %s\n", res.Name)
		fmt.Fprintln(stdout, strings.Join(res.Header, ","))
		for _, row := range res.Rows {
			fmt.Fprintln(stdout, strings.Join(row, ","))
		}
		fmt.Fprintln(stdout)
		if *jsonOut {
			if err := writeBench(*outdir, res, elapsed); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
	}
	return nil
}

// writeBench writes the experiment's benchmark report to
// <outdir>/BENCH_<name>.json.
func writeBench(outdir string, res experiments.Result, elapsed time.Duration) error {
	sweep, solver := experiments.Workers()
	report := benchReport{
		Name:          res.Name,
		SweepWorkers:  sweep,
		SolverWorkers: solver,
		ElapsedMS:     float64(elapsed.Microseconds()) / 1000,
		Header:        res.Header,
		Rows:          res.Rows,
		Solver:        res.Totals,
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(filepath.Join(outdir, "BENCH_"+res.Name+".json"), data, 0o644)
}
