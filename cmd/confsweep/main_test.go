package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"configsynth/internal/experiments"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3a", "fig5c", "table6", "ablation_flowtheory"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestMissingFlag(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -exp must error")
	}
}

func TestRunTable5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table5"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# table5") {
		t.Errorf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "isolation") || !strings.Contains(got, "cost_K") {
		t.Errorf("missing rows:\n%s", got)
	}
}

// TestRunJSONReport runs an experiment with workers and the JSON report
// enabled, and checks the BENCH file records the configuration, rows,
// and solver effort.
func TestRunJSONReport(t *testing.T) {
	defer experiments.SetWorkers(1, 1)
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-exp", "table5", "-workers", "2", "-json", "-outdir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_table5.json"))
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Name != "table5" {
		t.Errorf("name = %q", report.Name)
	}
	if report.SweepWorkers != 2 || report.SolverWorkers != 2 {
		t.Errorf("workers = %d/%d, want 2/2", report.SweepWorkers, report.SolverWorkers)
	}
	if report.ElapsedMS <= 0 {
		t.Errorf("elapsed_ms = %v", report.ElapsedMS)
	}
	if len(report.Rows) == 0 || len(report.Header) == 0 {
		t.Errorf("report missing data: %+v", report)
	}
	if report.Solver.Decisions == 0 && report.Solver.Propagations == 0 {
		t.Errorf("report shows no solver effort: %+v", report.Solver)
	}
}

// TestRunVerifyFlag runs an experiment with the solver self-checks
// armed: every model and unsat core behind the table is re-validated,
// and a failed check would panic the run.
func TestRunVerifyFlag(t *testing.T) {
	t.Setenv("CONFSYNTH_VERIFY", "") // restore the env after the run flips it
	var out strings.Builder
	if err := run([]string{"-exp", "table5", "-verify"}, &out); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("CONFSYNTH_VERIFY") != "1" {
		t.Fatal("-verify must set CONFSYNTH_VERIFY=1 for the experiment processes")
	}
	if !strings.Contains(out.String(), "# table5") {
		t.Errorf("missing header:\n%s", out.String())
	}
}
