package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig3a", "fig5c", "table6", "ablation_flowtheory"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestMissingFlag(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -exp must error")
	}
}

func TestRunTable5(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "table5"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "# table5") {
		t.Errorf("missing header:\n%s", got)
	}
	if !strings.Contains(got, "isolation") || !strings.Contains(got, "cost_K") {
		t.Errorf("missing rows:\n%s", got)
	}
}
