// Whatif: the decision-support workflow of paper §IV — start from
// infeasible slider values, use the unsat core and Algorithm 1 to
// understand why, apply a suggested relaxation, and re-synthesize. Also
// demonstrates the trade-off queries behind the paper's Fig. 3.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"

	"configsynth"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("whatif:", err)
		os.Exit(1)
	}
}

func run() error {
	problem := configsynth.PaperExample()
	// Deliberately contradictory: near-total isolation AND near-total
	// usability.
	problem.Thresholds.IsolationTenths = 90
	problem.Thresholds.UsabilityTenths = 85
	problem.Options.ProbeBudget = 15000

	syn, err := configsynth.New(problem)
	if err != nil {
		return err
	}

	fmt.Println("== attempt 1: isolation >= 9.0, usability >= 8.5, cost <= $20K ==")
	_, err = syn.Solve()
	if err == nil {
		return errors.New("expected the contradictory thresholds to be unsat")
	}
	if !configsynth.IsUnsat(err) {
		return err
	}
	var conflict *configsynth.ThresholdConflictError
	errors.As(err, &conflict)
	fmt.Println("unsat; conflicting constraints:", conflict.Core)

	fmt.Println("\n== Algorithm 1: systematic unsat analysis ==")
	ex, err := syn.Explain()
	if err != nil {
		return err
	}
	var usabilitySuggestion int64 = -1
	for _, r := range ex.Relaxations {
		fmt.Println(r)
		for _, sug := range r.Suggestions {
			if sug.Threshold == configsynth.ThresholdUsability && len(r.Dropped) == 1 {
				usabilitySuggestion = sug.ValueTenths
			}
		}
	}

	if usabilitySuggestion < 0 {
		fmt.Println("\nno single-threshold usability relaxation; relaxing isolation instead")
		usabilitySuggestion = 30
	}
	fmt.Printf("\n== attempt 2: adopt suggested usability %.1f ==\n",
		float64(usabilitySuggestion)/10)
	problem2 := configsynth.PaperExample()
	problem2.Thresholds.IsolationTenths = 50
	problem2.Thresholds.UsabilityTenths = int(usabilitySuggestion)
	syn2, err := configsynth.New(problem2)
	if err != nil {
		return err
	}
	design, err := syn2.Solve()
	if err != nil {
		return err
	}
	fmt.Printf("sat: isolation %.1f, usability %.1f, cost $%dK, %d devices\n",
		design.Isolation, design.Usability, design.Cost, design.DeviceCount())

	fmt.Println("\n== trade-off exploration (Fig. 3(a) queries) ==")
	for _, u := range []int{20, 50, 80} {
		iso, _, err := syn2.MaxIsolation(u, 20)
		if err != nil {
			return err
		}
		fmt.Printf("usability >= %.1f, cost <= $20K  ->  max isolation %.2f\n",
			float64(u)/10, iso)
	}
	return nil
}
