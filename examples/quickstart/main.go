// Quickstart: synthesize a security design for a small two-subnet
// network using the public API.
package main

import (
	"fmt"
	"log"
	"os"

	"configsynth"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A small network: web and app servers behind one router, a database
	// behind another, and a workstation subnet.
	net := configsynth.NewNetwork()
	web := net.AddHost("web")
	app := net.AddHost("app")
	db := net.AddHost("db")
	ws := net.AddHost("workstations")

	edge := net.AddRouter("edge")
	coreA := net.AddRouter("core-a")
	coreB := net.AddRouter("core-b")
	dist := net.AddRouter("dist")

	for _, pair := range [][2]configsynth.NodeID{
		{web, edge}, {app, edge},
		{edge, coreA}, {edge, coreB},
		{coreA, dist}, {coreB, dist},
		{db, dist}, {ws, dist},
	} {
		if _, err := net.Connect(pair[0], pair[1]); err != nil {
			return err
		}
	}

	// One service between every pair of hosts; the app must reach the
	// database and the workstations must reach the web server.
	const svc configsynth.Service = 1
	reqs := configsynth.NewRequirements()
	reqs.Require(configsynth.Flow{Src: app, Dst: db, Svc: svc})
	reqs.Require(configsynth.Flow{Src: ws, Dst: web, Svc: svc})

	problem := &configsynth.Problem{
		Network:      net,
		Catalog:      configsynth.DefaultCatalog(),
		Flows:        configsynth.AllPairsFlows(net, []configsynth.Service{svc}),
		Requirements: reqs,
		Thresholds: configsynth.Thresholds{
			IsolationTenths: 40, // network isolation >= 4.0 of 10
			UsabilityTenths: 40, // network usability >= 4.0 of 10
			CostBudget:      30, // at most $30K of devices
		},
	}

	syn, err := configsynth.New(problem)
	if err != nil {
		return err
	}
	design, err := syn.Solve()
	if err != nil {
		return err
	}

	fmt.Printf("synthesized: isolation %.1f, usability %.1f, cost $%dK, %d devices\n\n",
		design.Isolation, design.Usability, design.Cost, design.DeviceCount())
	return configsynth.WriteDesign(os.Stdout, problem, design)
}
