// Campus: a multi-subnet campus network with user-defined policies (the
// paper's UIC constraints), service demand ranks, and IPSec tunnel
// requirements — the paper's motivating scenario of heterogeneous
// isolation patterns under organizational policy.
package main

import (
	"fmt"
	"log"
	"os"

	"configsynth"
)

// Services on the campus network.
const (
	svcWeb configsynth.Service = 80
	svcSSH configsynth.Service = 22
	svcDB  configsynth.Service = 5432
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("campus:", err)
		os.Exit(1)
	}
}

func run() error {
	net := configsynth.NewNetwork()
	// Host groups (each stands for a subnet of similar hosts, as the
	// paper suggests for scaling).
	studentLab := net.AddHost("student-lab")
	staff := net.AddHost("staff")
	webFarm := net.AddHost("web-farm")
	dbCluster := net.AddHost("db-cluster")
	admin := net.AddHost("it-admin")
	internet := net.AddHost("internet")

	// A two-tier core: building routers around a distribution pair.
	bldgA := net.AddRouter("bldg-a")
	bldgB := net.AddRouter("bldg-b")
	dc := net.AddRouter("datacenter")
	distA := net.AddRouter("dist-a")
	distB := net.AddRouter("dist-b")
	border := net.AddRouter("border")

	for _, pair := range [][2]configsynth.NodeID{
		{studentLab, bldgA}, {staff, bldgB}, {admin, bldgB},
		{webFarm, dc}, {dbCluster, dc},
		{bldgA, distA}, {bldgA, distB},
		{bldgB, distA}, {bldgB, distB},
		{dc, distA}, {dc, distB},
		{border, distA}, {border, distB},
		{internet, border},
	} {
		if _, err := net.Connect(pair[0], pair[1]); err != nil {
			return err
		}
	}

	// Flows: web everywhere, SSH for admin/staff, DB for the web farm.
	hosts := []configsynth.NodeID{studentLab, staff, webFarm, dbCluster, admin, internet}
	var flows []configsynth.Flow
	for _, src := range hosts {
		for _, dst := range hosts {
			if src != dst {
				flows = append(flows, configsynth.Flow{Src: src, Dst: dst, Svc: svcWeb})
			}
		}
	}
	for _, src := range []configsynth.NodeID{admin, staff} {
		for _, dst := range []configsynth.NodeID{webFarm, dbCluster} {
			flows = append(flows, configsynth.Flow{Src: src, Dst: dst, Svc: svcSSH})
		}
	}
	flows = append(flows, configsynth.Flow{Src: webFarm, Dst: dbCluster, Svc: svcDB})

	// Connectivity requirements: the business-critical paths.
	reqs := configsynth.NewRequirements()
	reqs.Require(configsynth.Flow{Src: webFarm, Dst: dbCluster, Svc: svcDB})
	reqs.Require(configsynth.Flow{Src: admin, Dst: webFarm, Svc: svcSSH})
	reqs.Require(configsynth.Flow{Src: internet, Dst: webFarm, Svc: svcWeb})
	reqs.Require(configsynth.Flow{Src: studentLab, Dst: webFarm, Svc: svcWeb})

	// Demand ranks: the database link matters most, student web least.
	ranks := configsynth.NewRanks()
	ranks.SetServiceRank(svcDB, 3)
	ranks.SetServiceRank(svcSSH, 2)
	ranks.SetServiceRank(svcWeb, 1)

	// User-defined policies in the spirit of the paper's UIC examples:
	//   UIC1: no IPSec tunneling for SSH (it is already encrypted).
	//   UIC3: no trusted-communication pattern for public web flows.
	//   UIC2-style: if the Internet is denied to the student lab, the
	//   lab must keep its web path to the web farm open.
	pols := configsynth.NewPolicySet()
	pols.Add(
		configsynth.ForbidPattern{Svc: svcSSH, Pattern: configsynth.TrustedComm},
		configsynth.ForbidPattern{Svc: svcSSH, Pattern: configsynth.ProxyTrustedComm},
		configsynth.ForbidPattern{Svc: svcWeb, Pattern: configsynth.TrustedComm},
		configsynth.Implication{
			If:          configsynth.Flow{Src: internet, Dst: studentLab, Svc: svcWeb},
			IfPattern:   configsynth.AccessDeny,
			Then:        configsynth.Flow{Src: studentLab, Dst: webFarm, Svc: svcWeb},
			ThenPattern: configsynth.AccessDeny,
			ThenNegated: true,
		},
		// The Internet must never reach the database cluster.
		configsynth.PinFlow{
			Flow:    configsynth.Flow{Src: internet, Dst: dbCluster, Svc: svcWeb},
			Pattern: configsynth.AccessDeny,
		},
	)

	problem := &configsynth.Problem{
		Network:      net,
		Catalog:      configsynth.DefaultCatalog(),
		Flows:        flows,
		Requirements: reqs,
		Ranks:        ranks,
		Policies:     pols,
		Thresholds: configsynth.Thresholds{
			IsolationTenths: 35,
			UsabilityTenths: 50,
			CostBudget:      40,
		},
	}

	syn, err := configsynth.New(problem)
	if err != nil {
		return err
	}
	design, err := syn.Solve()
	if err != nil {
		return err
	}
	fmt.Printf("campus design: isolation %.1f, usability %.1f, cost $%dK\n\n",
		design.Isolation, design.Usability, design.Cost)
	if err := configsynth.WriteDesign(os.Stdout, problem, design); err != nil {
		return err
	}

	// Verify the policies visibly.
	fmt.Println("\npolicy spot checks:")
	dbFlow := configsynth.Flow{Src: internet, Dst: dbCluster, Svc: svcWeb}
	fmt.Printf("  internet->db-cluster: pattern %d (1 = access deny)\n", design.FlowPatterns[dbFlow])
	sshFlow := configsynth.Flow{Src: admin, Dst: webFarm, Svc: svcSSH}
	fmt.Printf("  admin->web-farm ssh:  pattern %d (must not be 2/5)\n", design.FlowPatterns[sshFlow])
	return nil
}
