// Enterprise: the paper's §IV-C running example — the Fig. 2(a) network
// of 10 hosts and 8 routers with Table IV-style inputs. Reproduces the
// Table V output (isolation patterns per host pair) and the Fig. 2(b)
// device placements, and prints the slider-assistance table (Table III).
package main

import (
	"fmt"
	"log"
	"os"

	"configsynth"
)

func main() {
	if err := run(); err != nil {
		log.SetFlags(0)
		log.Println("enterprise:", err)
		os.Exit(1)
	}
}

func run() error {
	problem := configsynth.PaperExample()
	problem.Options.ProbeBudget = 15000

	syn, err := configsynth.New(problem)
	if err != nil {
		return err
	}

	fmt.Println("== slider assistance (paper Table III) ==")
	entries, err := syn.Assist([]int{0, 25, 50, 75, 100})
	if err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Println(e)
	}

	fmt.Println("\n== synthesis (paper Table V / Fig. 2(b)) ==")
	design, err := syn.Solve()
	if err != nil {
		if !configsynth.IsUnsat(err) {
			return err
		}
		// Decision support: explain the conflict like Algorithm 1.
		fmt.Println("unsat:", err)
		ex, exErr := syn.Explain()
		if exErr != nil {
			return exErr
		}
		for _, r := range ex.Relaxations {
			fmt.Println(r)
		}
		return nil
	}
	if err := configsynth.WriteDesign(os.Stdout, problem, design); err != nil {
		return err
	}

	fmt.Println("\n== per-host isolation (Eq. 2-3, alpha = 0.75) ==")
	for _, h := range problem.Network.Hosts() {
		node, _ := problem.Network.Node(h)
		fmt.Printf("%-4s %.2f\n", node.Name, design.HostIsolation[h])
	}
	return nil
}
