package configsynth_test

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"configsynth"
	"configsynth/internal/experiments"
	"configsynth/internal/isolation"
	"configsynth/internal/netgen"
)

// Each benchmark regenerates one of the paper's evaluation tables or
// figures (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
// for measured-vs-paper results). The data rows are logged once per
// benchmark; run with -benchtime=1x for a single regeneration pass.

func benchExperiment(b *testing.B, name string) {
	// CONFSYNTH_WORKERS=N sweeps data points on N goroutines and races
	// N diversified solvers per probe, mirroring confsweep -workers.
	if env := os.Getenv("CONFSYNTH_WORKERS"); env != "" {
		w, err := strconv.Atoi(env)
		if err != nil {
			b.Fatalf("CONFSYNTH_WORKERS=%q: %v", env, err)
		}
		experiments.SetWorkers(w, w)
		defer experiments.SetWorkers(1, 1)
	}
	fn, ok := experiments.All()[name]
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	for i := 0; i < b.N; i++ {
		res, err := fn()
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if i == 0 {
			var sb strings.Builder
			fmt.Fprintf(&sb, "\n%s\n", strings.Join(res.Header, ","))
			for _, row := range res.Rows {
				fmt.Fprintln(&sb, strings.Join(row, ","))
			}
			b.Log(sb.String())
		}
	}
}

// BenchmarkFig3a_IsolationVsUsability regenerates Fig. 3(a): maximum
// isolation against the usability constraint at budgets $10K and $20K.
func BenchmarkFig3a_IsolationVsUsability(b *testing.B) { benchExperiment(b, "fig3a") }

// BenchmarkFig3b_IsolationVsCost regenerates Fig. 3(b): maximum
// isolation against the deployment budget at usability 5 and 7.
func BenchmarkFig3b_IsolationVsCost(b *testing.B) { benchExperiment(b, "fig3b") }

// BenchmarkFig4a_TimeVsHosts regenerates Fig. 4(a): synthesis time
// against the number of hosts at 10% and 20% connectivity requirements.
func BenchmarkFig4a_TimeVsHosts(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4b_TimeVsRouters regenerates Fig. 4(b): synthesis time
// against the number of core routers.
func BenchmarkFig4b_TimeVsRouters(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkFig4c_TimeVsCRVolume regenerates Fig. 4(c): synthesis time
// against the connectivity-requirement volume.
func BenchmarkFig4c_TimeVsCRVolume(b *testing.B) { benchExperiment(b, "fig4c") }

// BenchmarkFig5a_TimeVsIsolationConstraint regenerates Fig. 5(a):
// synthesis time against the isolation constraint tightness.
func BenchmarkFig5a_TimeVsIsolationConstraint(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFig5b_TimeVsCostConstraint regenerates Fig. 5(b): synthesis
// time against the deployment budget tightness.
func BenchmarkFig5b_TimeVsCostConstraint(b *testing.B) { benchExperiment(b, "fig5b") }

// BenchmarkFig5c_UnsatVsSat regenerates Fig. 5(c): satisfiable vs
// unsatisfiable synthesis time as the network grows.
func BenchmarkFig5c_UnsatVsSat(b *testing.B) { benchExperiment(b, "fig5c") }

// BenchmarkTableIII_SliderAssistance regenerates Table III: the slider
// assistance preview for the example network.
func BenchmarkTableIII_SliderAssistance(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkTableV_ExampleSynthesis regenerates Table V / Fig. 2: the
// paper's running example synthesis.
func BenchmarkTableV_ExampleSynthesis(b *testing.B) { benchExperiment(b, "table5") }

// BenchmarkTableVI_MemoryVsHosts regenerates Table VI: model memory
// against problem size (pair with -benchmem for allocator totals).
func BenchmarkTableVI_MemoryVsHosts(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkAblationFlowTheory compares the flow-assignment theory
// propagator against pure clause learning on a tight UNSAT instance
// (DESIGN.md ablation 1).
func BenchmarkAblationFlowTheory(b *testing.B) { benchExperiment(b, "ablation_flowtheory") }

// BenchmarkAblationRouteBound measures the cost of larger route
// enumeration caps (DESIGN.md ablation 2).
func BenchmarkAblationRouteBound(b *testing.B) { benchExperiment(b, "ablation_routebound") }

// BenchmarkAblationMaximize compares binary-search optimization against
// a naive linear threshold scan (DESIGN.md ablation 3).
func BenchmarkAblationMaximize(b *testing.B) { benchExperiment(b, "ablation_maximize") }

// BenchmarkTableI_ScoreSynthesis measures deriving the isolation scores
// from the paper's partial order (Table I).
func BenchmarkTableI_ScoreSynthesis(b *testing.B) {
	ids := make([]isolation.PatternID, 0, 5)
	for _, p := range isolation.DefaultPatterns() {
		ids = append(ids, p.ID)
	}
	order := isolation.DefaultOrder()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isolation.SolveScores(ids, order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeExample measures model generation alone (the paper
// notes it is negligible next to solving).
func BenchmarkEncodeExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prob := netgen.PaperExample()
		if _, err := configsynth.New(prob); err != nil {
			b.Fatal(err)
		}
	}
}
