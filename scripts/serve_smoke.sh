#!/usr/bin/env bash
# End-to-end smoke of the synthesis service: boot confserved, synthesize
# the paper example, check the design is Sat, resubmit and check the
# second answer is served from the cache, then confirm /statsz agrees.
set -euo pipefail

ADDR="127.0.0.1:8732"
BASE="http://$ADDR"

go build -o /tmp/confserved ./cmd/confserved
/tmp/confserved -addr "$ADDR" -workers 1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" -eq 100 ]; then
    echo "confserved never became healthy" >&2
    exit 1
  fi
  sleep 0.1
done

first="$(curl -sf -X POST "$BASE/v1/synthesize?example=1")"
echo "$first" | grep -q '"status": "sat"' || {
  echo "first synthesis not sat:" >&2
  echo "$first" >&2
  exit 1
}
echo "$first" | grep -q '"cached": false' || {
  echo "first synthesis unexpectedly cached" >&2
  exit 1
}

second="$(curl -sf -X POST "$BASE/v1/synthesize?example=1")"
echo "$second" | grep -q '"cached": true' || {
  echo "resubmission missed the cache:" >&2
  echo "$second" >&2
  exit 1
}

stats="$(curl -sf "$BASE/statsz")"
# The result cache renders before the session registry in /statsz, and
# both carry a "hits" counter — take the first (cache) one.
hits="$(echo "$stats" | grep -o '"hits": [0-9]*' | head -n 1 | grep -o '[0-9]*')"
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
  echo "statsz shows no cache hits:" >&2
  echo "$stats" >&2
  exit 1
fi

echo "serve smoke OK: sat design, cache hit on resubmit, $hits hit(s) in /statsz"
