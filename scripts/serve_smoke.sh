#!/usr/bin/env bash
# End-to-end smoke of the synthesis service: boot confserved, synthesize
# the paper example, check the design is Sat, resubmit and check the
# second answer is served from the cache, then confirm /statsz agrees.
set -euo pipefail

ADDR="127.0.0.1:8732"
BASE="http://$ADDR"

go build -o /tmp/confserved ./cmd/confserved
/tmp/confserved -addr "$ADDR" -workers 1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

for i in $(seq 1 100); do
  if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
    break
  fi
  if [ "$i" -eq 100 ]; then
    echo "confserved never became healthy" >&2
    exit 1
  fi
  sleep 0.1
done

first="$(curl -sf -X POST "$BASE/v1/synthesize?example=1")"
echo "$first" | grep -q '"status": "sat"' || {
  echo "first synthesis not sat:" >&2
  echo "$first" >&2
  exit 1
}
echo "$first" | grep -q '"cached": false' || {
  echo "first synthesis unexpectedly cached" >&2
  exit 1
}

second="$(curl -sf -X POST "$BASE/v1/synthesize?example=1")"
echo "$second" | grep -q '"cached": true' || {
  echo "resubmission missed the cache:" >&2
  echo "$second" >&2
  exit 1
}

# A decomposable two-department spec, solved twice in decomp mode: the
# first run cold-misses its regions, the second hits the whole-problem
# cache, and the shared region cache keeps its counters either way.
TWIN_SPEC='nodes 6 3
link 1 7
link 2 7
link 3 7
link 4 8
link 5 8
link 6 8
link 7 9
link 8 9
services 1
require 1 2
require 4 5
sliders 2.5 5 100'

decomp1="$(curl -sf -X POST --data-binary "$TWIN_SPEC" "$BASE/v1/synthesize?mode=decomp")"
echo "$decomp1" | grep -q '"status": "sat"' || {
  echo "decomp synthesis not sat:" >&2
  echo "$decomp1" >&2
  exit 1
}
echo "$decomp1" | grep -q '"fallback": true' && {
  echo "decomp synthesis unexpectedly fell back to monolithic:" >&2
  echo "$decomp1" >&2
  exit 1
}
curl -sf -X POST --data-binary "$TWIN_SPEC" "$BASE/v1/synthesize?mode=decomp" >/dev/null

stats="$(curl -sf "$BASE/statsz")"
# Assert the labeled counters, not their position in the payload: the
# whole-problem cache (.cache), the decomp region cache (.region_cache),
# and the what-if session registry all carry a "hits" field, so parse
# the JSON structure instead of grepping the first match.
echo "$stats" | python3 -c '
import json, sys
st = json.load(sys.stdin)
cache, regions = st["cache"], st["region_cache"]
problems = []
if cache["hits"] < 2:
    problems.append("cache.hits = %d (want >= 2: example resubmit + decomp resubmit)" % cache["hits"])
if regions["misses"] < 1:
    problems.append("region_cache.misses = %d (want >= 1: cold decomp regions)" % regions["misses"])
if regions["entries"] < 1:
    problems.append("region_cache.entries = %d (want >= 1)" % regions["entries"])
if problems:
    print("\n".join(problems), file=sys.stderr)
    sys.exit(1)
print("statsz: cache hits=%d misses=%d, region_cache hits=%d misses=%d entries=%d"
      % (cache["hits"], cache["misses"], regions["hits"], regions["misses"], regions["entries"]))
'

echo "serve smoke OK: sat designs, whole-problem cache hit on resubmit, region counters populated"
