#!/usr/bin/env bash
# Chaos smoke of the fault-tolerant service: boot confserved with a
# durable journal and seeded fault injection (solver panics + journal
# write errors), drive load through confload while faults fire, confirm
# the daemon survives and /statsz counts recovered panics, then kill -9
# mid-load, restart fault-free against the same journal, and verify the
# replay completes — /readyz flips back to 200 and every journaled job
# reaches a terminal state.
set -euo pipefail

ADDR="127.0.0.1:8733"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
JOURNAL="$WORKDIR/journal.ndjson"

go build -o /tmp/confserved ./cmd/confserved
go build -o /tmp/confload ./cmd/confload

cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}

wait_http() { # url, want_status, tries
  local url="$1" want="$2" tries="${3:-100}" code
  for i in $(seq 1 "$tries"); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$url" 2>/dev/null || true)"
    if [ "$code" = "$want" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "$url never returned $want (last: ${code:-none})" >&2
  return 1
}

# Phase 1: serve under injected faults. The panic rate is well above the
# issue's 10% floor; the journal-error rate exercises the WAL self-repair
# and the ErrJournal -> 503 -> client-retry path; the per-solve delay
# stretches jobs so the phase-2 kill -9 provably lands mid-work.
CONFSYNTH_FAULTS="seed=7,sat.solve.panic=0.15,wal.append.err=0.02,sat.solve.delay=1:40ms" \
  /tmp/confserved -addr "$ADDR" -workers 2 -journal "$JOURNAL" &
SERVER_PID=$!
trap cleanup EXIT

wait_http "$BASE/healthz" 200
wait_http "$BASE/readyz" 200

# -allow-errors: panicked jobs fail (contained, terminal) — the point is
# that the daemon survives them, not that every request succeeds.
/tmp/confload -addr "$BASE" -clients 4 -requests 60 -problems 8 -allow-errors

if ! kill -0 "$SERVER_PID" 2>/dev/null; then
  echo "confserved exited under injected solver panics" >&2
  exit 1
fi

stats="$(curl -sf "$BASE/statsz")"
panics="$(echo "$stats" | grep -o '"panics_recovered": [0-9]*' | grep -o '[0-9]*$')"
if [ -z "$panics" ] || [ "$panics" -lt 1 ]; then
  echo "no recovered panics in /statsz after the chaos load:" >&2
  echo "$stats" >&2
  exit 1
fi

# Phase 2: kill -9 mid-load. The second run uses max-isolation — a
# different cache key and a much slower query than phase 1's solves —
# so jobs are accepted (journaled) but still queued or mid-descent when
# the process dies.
/tmp/confload -addr "$BASE" -clients 4 -requests 60 -problems 8 -mode max-isolation -allow-errors >/dev/null 2>&1 &
LOAD_PID=$!
sleep 0.3
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
wait "$LOAD_PID" 2>/dev/null || true

if [ ! -s "$JOURNAL" ]; then
  echo "journal is empty after the crash" >&2
  exit 1
fi

# Phase 3: restart fault-free on the same journal; the replay must
# complete (readyz 200 means replayPending drained) and the replayed
# jobs must show up as terminal work in /statsz.
/tmp/confserved -addr "$ADDR" -workers 2 -journal "$JOURNAL" &
SERVER_PID=$!

wait_http "$BASE/healthz" 200
wait_http "$BASE/readyz" 200 300

stats="$(curl -sf "$BASE/statsz")"
replayed="$(echo "$stats" | grep -o '"jobs_replayed": [0-9]*' | grep -o '[0-9]*$')"
completed="$(echo "$stats" | grep -o '"jobs_completed": [0-9]*' | grep -o '[0-9]*$')"
failed="$(echo "$stats" | grep -o '"jobs_failed": [0-9]*' | grep -o '[0-9]*$')"
active="$(echo "$stats" | grep -o '"jobs_active": [0-9]*' | grep -o '[0-9]*$')"
queued="$(echo "$stats" | grep -o '"queue_depth": [0-9]*' | grep -o '[0-9]*$')"

if [ "${replayed:-0}" -lt 1 ]; then
  echo "kill -9 mid-load stranded no jobs for replay:" >&2
  echo "$stats" >&2
  exit 1
fi
# Ready + empty queue + nothing active means every replayed job reached
# a terminal state.
if [ "${active:-0}" -ne 0 ] || [ "${queued:-0}" -ne 0 ]; then
  echo "replayed jobs still pending after readyz flipped to 200:" >&2
  echo "$stats" >&2
  exit 1
fi
if [ "$((${completed:-0} + ${failed:-0}))" -lt "${replayed:-0}" ]; then
  echo "replayed jobs did not all reach terminal states:" >&2
  echo "$stats" >&2
  exit 1
fi

# The restarted daemon still answers fresh work.
post="$(curl -sf -X POST "$BASE/v1/synthesize?example=1")"
echo "$post" | grep -q '"status": "sat"' || {
  echo "post-restart synthesis not sat:" >&2
  echo "$post" >&2
  exit 1
}

echo "chaos smoke OK: $panics panic(s) contained, ${replayed:-0} job(s) replayed after kill -9, readyz recovered"
