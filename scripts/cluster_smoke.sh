#!/usr/bin/env bash
# Cluster smoke: boot a 3-node confserved cluster (fingerprint routing,
# peer cache fill, WAL shipping to ring successors), drive a batch
# sweep across all three endpoints, and verify the cluster behaves as
# one cache: repeats are answered without re-solving and forwarding
# counters prove the routing happened. Then the chaos half: accept
# async jobs on one node, kill -9 it mid-work, and assert its WAL
# follower adopts the shipped journal — every accepted job reaches a
# terminal state under its original ID on exactly one survivor.
set -euo pipefail

PORTS=(8741 8742 8743)
IDS=(n1 n2 n3)
PEERS="n1=http://127.0.0.1:8741,n2=http://127.0.0.1:8742,n3=http://127.0.0.1:8743"
WORKDIR="$(mktemp -d)"
declare -a PIDS=()

go build -o /tmp/confserved ./cmd/confserved
go build -o /tmp/confload ./cmd/confload

# A leftover confserved from an earlier run holding one of our ports
# would silently absorb requests and make every assertion meaningless,
# so refuse to start until the ports are actually free.
for p in "${PORTS[@]}"; do
  if curl -s -o /dev/null --max-time 1 "http://127.0.0.1:$p/healthz"; then
    echo "port $p is already in use; kill the stale process first" >&2
    exit 1
  fi
done

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_http() { # url, want_status, tries
  local url="$1" want="$2" tries="${3:-100}" code
  for i in $(seq 1 "$tries"); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$url" 2>/dev/null || true)"
    if [ "$code" = "$want" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "$url never returned $want (last: ${code:-none})" >&2
  return 1
}

stat_of() { # base, json_key -> value (0 when absent)
  local v
  v="$(curl -sf "$1/statsz" | grep -o "\"$2\": [0-9]*" | head -1 | grep -o '[0-9]*$')"
  echo "${v:-0}"
}

sum_stat() { # json_key -> sum over the given bases
  local key="$1" total=0
  shift
  for base in "$@"; do
    total=$((total + $(stat_of "$base" "$key")))
  done
  echo "$total"
}

start_node() { # index
  local i="$1"
  mkdir -p "$WORKDIR/${IDS[$i]}"
  /tmp/confserved -addr "127.0.0.1:${PORTS[$i]}" -workers 2 \
    -node-id "${IDS[$i]}" -peers "$PEERS" \
    -heartbeat 200ms -suspect-after 2 -dead-after 4 \
    -journal "$WORKDIR/${IDS[$i]}/journal.ndjson" >/dev/null 2>&1 &
  PIDS[$i]=$!
}

for i in 0 1 2; do start_node "$i"; done
for p in "${PORTS[@]}"; do
  wait_http "http://127.0.0.1:$p/healthz" 200
  wait_http "http://127.0.0.1:$p/readyz" 200
done
N1="http://127.0.0.1:${PORTS[0]}"
N2="http://127.0.0.1:${PORTS[1]}"
N3="http://127.0.0.1:${PORTS[2]}"

# Phase 1: a batch sweep spread over all three endpoints, twice. The
# first pass is cache-miss-heavy (every problem cold somewhere); the
# second replays the same fixed-seed pool, so fingerprint routing must
# answer repeats from the owners' caches instead of re-solving.
/tmp/confload -targets "$N1,$N2,$N3" -clients 6 -requests 36 -problems 12 >/dev/null
solved_cold="$(sum_stat jobs_completed "$N1" "$N2" "$N3")"
/tmp/confload -targets "$N1,$N2,$N3" -clients 6 -requests 36 -problems 12 >/dev/null

forwarded="$(sum_stat requests_forwarded "$N1" "$N2" "$N3")"
if [ "$forwarded" -lt 1 ]; then
  echo "no requests were forwarded to fingerprint owners" >&2
  exit 1
fi
hits="$(sum_stat hits "$N1" "$N2" "$N3")"
if [ "$hits" -lt 1 ]; then
  echo "repeat sweep produced no cache hits across the cluster" >&2
  exit 1
fi

# Peer cache fill: posting with the forwarding loop-guard header pins
# the request to the receiving node, so non-owners of this (already
# solved and cached) problem must fetch the proven result from the
# owner's cache over the fill RPC instead of re-solving.
for base in "$N1" "$N2" "$N3"; do
  curl -sf -X POST -H 'X-Confsynth-Forwarded: smoke' \
    "$base/v1/synthesize?example=1&timeout=60s" >/dev/null
done
fills="$(sum_stat fill_hits "$N1" "$N2" "$N3")"
if [ "$fills" -lt 1 ]; then
  echo "no peer cache fills despite pinned repeat posts" >&2
  exit 1
fi
echo "phase 1 OK: $solved_cold cold jobs, $forwarded forwarded, $hits cache hits, $fills peer fills"

# Phase 2: chaos. Accept slow async jobs on n1 (pinned there by the
# loop-guard header so they land in n1's journal), let the WAL shipper
# stream them to n1's follower, then kill -9 n1 mid-work.
JOB_IDS=()
for i in 1 2 3; do
  resp="$(curl -sf -X POST -H 'X-Confsynth-Forwarded: smoke' \
    "$N1/v1/synthesize?example=1&mode=max-isolation&async=1&timeout=30s")"
  id="$(echo "$resp" | grep -o '"job_id": "[^"]*"' | cut -d'"' -f4)"
  if [ -z "$id" ]; then
    echo "async submit to n1 returned no job id: $resp" >&2
    exit 1
  fi
  JOB_IDS+=("$id")
done
sleep 1 # let the shipper stream the submit records to the follower

kill -9 "${PIDS[0]}"
wait "${PIDS[0]}" 2>/dev/null || true

# One survivor (n1's ring successor) must adopt the shipped journal.
takeovers=0
for i in $(seq 1 100); do
  takeovers="$(sum_stat takeovers "$N2" "$N3")"
  if [ "$takeovers" -ge 1 ]; then break; fi
  sleep 0.2
done
if [ "$takeovers" -ne 1 ]; then
  echo "takeovers across survivors = $takeovers, want exactly 1" >&2
  curl -s "$N2/statsz" >&2 || true
  curl -s "$N3/statsz" >&2 || true
  exit 1
fi

# Exactly-once: every job n1 accepted reaches a terminal state under
# its original ID on exactly one survivor — the follower that adopted
# the journal. A non-terminal job answers 200 with "status": queued/
# running; a terminal one answers with the result ("status": sat/...)
# or, for a deadline-canceled max-isolation run, a 4xx error. Anything
# but 404 means the node knows the job; what is forbidden is a job that
# vanished (0 holders) or lives on two nodes (2 holders).
for id in "${JOB_IDS[@]}"; do
  holders=0
  for base in "$N2" "$N3"; do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs/$id")"
    if [ "$code" != "404" ]; then holders=$((holders + 1)); fi
  done
  if [ "$holders" -ne 1 ]; then
    echo "job $id is registered on $holders survivors, want exactly 1" >&2
    exit 1
  fi
  terminal=""
  for i in $(seq 1 200); do
    for base in "$N2" "$N3"; do
      code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs/$id")"
      if [ "$code" = "404" ]; then continue; fi
      if [ "$code" != "200" ]; then
        terminal="http-$code" # error result, e.g. canceled at deadline
        continue
      fi
      status="$(curl -s "$base/v1/jobs/$id" | grep -o '"status": "[^"]*"' | head -1 | cut -d'"' -f4 || true)"
      case "$status" in
        queued|running|"") ;; # still in flight
        *) terminal="$status" ;;
      esac
    done
    if [ -n "$terminal" ]; then break; fi
    sleep 0.3
  done
  if [ -z "$terminal" ]; then
    echo "adopted job $id never reached a terminal state" >&2
    exit 1
  fi
  echo "  job $id: terminal ($terminal) on exactly one survivor"
done
adopted="$(sum_stat jobs_adopted "$N2" "$N3")"
if [ "$adopted" -lt "${#JOB_IDS[@]}" ]; then
  echo "follower adopted $adopted jobs, want >= ${#JOB_IDS[@]}" >&2
  exit 1
fi

# The survivors still serve fresh work as a cluster.
post="$(curl -sf -X POST "$N2/v1/synthesize?example=1&timeout=60s")"
echo "$post" | grep -q '"status": "sat"' || {
  echo "post-takeover synthesis not sat:" >&2
  echo "$post" >&2
  exit 1
}

echo "cluster smoke OK: $forwarded forwarded, $fills peer fills, 1 takeover, ${#JOB_IDS[@]} jobs adopted exactly once"
