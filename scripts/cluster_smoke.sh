#!/usr/bin/env bash
# Cluster churn smoke: boot a 4-node confserved cluster (fingerprint
# routing, peer cache fill, WAL shipping to the two ring successors),
# drive a batch sweep across all endpoints, and verify the cluster
# behaves as one cache. Then the churn half: accept async jobs on two
# nodes, kill -9 both mid-batch — n3 and n4 are each other's neighbors,
# so one takeover runs the quorum verdict between two live followers and
# the other runs the two-failure path (co-follower died with the origin)
# — and assert every accepted job reaches a terminal state under its
# original ID on exactly one survivor while the batch client fails over
# without errors. Finally restart n3 with its stale journal via the
# epoch-handshake -join flow and assert it is re-admitted, truncates the
# superseded jobs, and serves fresh work.
set -euo pipefail

PORTS=(8741 8742 8743 8744)
IDS=(n1 n2 n3 n4)
PEERS="n1=http://127.0.0.1:8741,n2=http://127.0.0.1:8742,n3=http://127.0.0.1:8743,n4=http://127.0.0.1:8744"
WORKDIR="$(mktemp -d)"
declare -a PIDS=()

go build -o /tmp/confserved ./cmd/confserved
go build -o /tmp/confload ./cmd/confload

# A leftover confserved from an earlier run holding one of our ports
# would silently absorb requests and make every assertion meaningless,
# so refuse to start until the ports are actually free.
for p in "${PORTS[@]}"; do
  if curl -s -o /dev/null --max-time 1 "http://127.0.0.1:$p/healthz"; then
    echo "port $p is already in use; kill the stale process first" >&2
    exit 1
  fi
done

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

wait_http() { # url, want_status, tries
  local url="$1" want="$2" tries="${3:-100}" code
  for i in $(seq 1 "$tries"); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$url" 2>/dev/null || true)"
    if [ "$code" = "$want" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "$url never returned $want (last: ${code:-none})" >&2
  return 1
}

stat_of() { # base, json_key -> value (0 when absent)
  local v
  v="$(curl -sf "$1/statsz" | grep -o "\"$2\": [0-9]*" | head -1 | grep -o '[0-9]*$')"
  echo "${v:-0}"
}

sum_stat() { # json_key -> sum over the given bases
  local key="$1" total=0
  shift
  for base in "$@"; do
    total=$((total + $(stat_of "$base" "$key")))
  done
  echo "$total"
}

start_node() { # index
  local i="$1"
  mkdir -p "$WORKDIR/${IDS[$i]}"
  /tmp/confserved -addr "127.0.0.1:${PORTS[$i]}" -workers 2 \
    -node-id "${IDS[$i]}" -peers "$PEERS" \
    -heartbeat 200ms -suspect-after 2 -dead-after 4 \
    -journal "$WORKDIR/${IDS[$i]}/journal.ndjson" >/dev/null 2>&1 &
  PIDS[$i]=$!
}

for i in 0 1 2 3; do start_node "$i"; done
for p in "${PORTS[@]}"; do
  wait_http "http://127.0.0.1:$p/healthz" 200
  wait_http "http://127.0.0.1:$p/readyz" 200
done
N1="http://127.0.0.1:${PORTS[0]}"
N2="http://127.0.0.1:${PORTS[1]}"
N3="http://127.0.0.1:${PORTS[2]}"
N4="http://127.0.0.1:${PORTS[3]}"

# Phase 1: a batch sweep spread over all four endpoints, twice. The
# first pass is cache-miss-heavy (every problem cold somewhere); the
# second replays the same fixed-seed pool, so fingerprint routing must
# answer repeats from the owners' caches instead of re-solving.
/tmp/confload -targets "$N1,$N2,$N3,$N4" -clients 6 -requests 48 -problems 12 >/dev/null
solved_cold="$(sum_stat jobs_completed "$N1" "$N2" "$N3" "$N4")"
/tmp/confload -targets "$N1,$N2,$N3,$N4" -clients 6 -requests 48 -problems 12 >/dev/null

forwarded="$(sum_stat requests_forwarded "$N1" "$N2" "$N3" "$N4")"
if [ "$forwarded" -lt 1 ]; then
  echo "no requests were forwarded to fingerprint owners" >&2
  exit 1
fi
hits="$(sum_stat hits "$N1" "$N2" "$N3" "$N4")"
if [ "$hits" -lt 1 ]; then
  echo "repeat sweep produced no cache hits across the cluster" >&2
  exit 1
fi

# Peer cache fill: first an unpinned post, which forwards to the
# example problem's fingerprint owner and leaves the proven result in
# the owner's cache. Then posting with the forwarding loop-guard header
# pins the request to each receiving node, so non-owners must fetch the
# result from the owner's cache over the fill RPC instead of re-solving.
curl -sf -X POST "$N1/v1/synthesize?example=1&timeout=60s" >/dev/null
for base in "$N1" "$N2" "$N3" "$N4"; do
  curl -sf -X POST -H 'X-Confsynth-Forwarded: smoke' \
    "$base/v1/synthesize?example=1&timeout=60s" >/dev/null
done
fills="$(sum_stat fill_hits "$N1" "$N2" "$N3" "$N4")"
if [ "$fills" -lt 1 ]; then
  echo "no peer cache fills despite pinned repeat posts" >&2
  exit 1
fi
echo "phase 1 OK: $solved_cold cold jobs, $forwarded forwarded, $hits cache hits, $fills peer fills"

# Phase 2: churn. Accept slow async jobs on n3 and n4 (pinned there by
# the loop-guard header so they land in those journals), let the WAL
# shipper stream them to the followers, then kill -9 both nodes while a
# batch is in flight across all four endpoints.
JOB_IDS=()
for base in "$N3" "$N4"; do
  for i in 1 2; do
    resp="$(curl -sf -X POST -H 'X-Confsynth-Forwarded: smoke' \
      "$base/v1/synthesize?example=1&mode=max-isolation&async=1&timeout=30s")"
    id="$(echo "$resp" | grep -o '"job_id": "[^"]*"' | cut -d'"' -f4)"
    if [ -z "$id" ]; then
      echo "async submit returned no job id: $resp" >&2
      exit 1
    fi
    JOB_IDS+=("$id")
  done
done
sleep 1 # let the shipper stream the submit records to the followers

/tmp/confload -targets "$N1,$N2,$N3,$N4" -clients 6 -requests 80 -problems 20 \
  -json "$WORKDIR/churn.json" >"$WORKDIR/churn.out" 2>&1 &
BATCH_PID=$!
sleep 0.5
kill -9 "${PIDS[2]}" "${PIDS[3]}"
wait "${PIDS[2]}" 2>/dev/null || true
wait "${PIDS[3]}" 2>/dev/null || true

# The batch must ride out both deaths: dead endpoints are skipped with
# the capped backoff and every request completes elsewhere.
if ! wait "$BATCH_PID"; then
  echo "mid-churn batch failed:" >&2
  cat "$WORKDIR/churn.out" >&2
  exit 1
fi
batch_errors="$(grep -o '"errors": [0-9]*' "$WORKDIR/churn.json" | grep -o '[0-9]*$')"
if [ "${batch_errors:-1}" -ne 0 ]; then
  echo "mid-churn batch reported $batch_errors errors, want 0" >&2
  cat "$WORKDIR/churn.out" >&2
  exit 1
fi

# Both deaths must settle into takeovers: n4's followers (n1, n2) run
# the quorum verdict, n3's surviving follower adopts alone after its
# co-follower n4 died with it — exactly one adoption per victim.
takeovers=0
for i in $(seq 1 150); do
  takeovers="$(sum_stat takeovers "$N1" "$N2")"
  if [ "$takeovers" -ge 2 ]; then break; fi
  sleep 0.2
done
if [ "$takeovers" -ne 2 ]; then
  echo "takeovers across survivors = $takeovers, want exactly 2" >&2
  curl -s "$N1/statsz" >&2 || true
  curl -s "$N2/statsz" >&2 || true
  exit 1
fi
epoch="$(stat_of "$N1" epoch)"
if [ "$epoch" -lt 2 ]; then
  echo "survivor epoch $epoch after two deaths, want >= 2" >&2
  exit 1
fi

# Exactly-once: every job the victims accepted reaches a terminal state
# under its original ID on exactly one survivor. A non-terminal job
# answers 200 with "status": queued/running; a terminal one answers with
# the result ("status": sat/...) or, for a deadline-canceled
# max-isolation run, a 4xx error. Anything but 404 means the node knows
# the job; what is forbidden is a job that vanished (0 holders) or lives
# on two nodes (2 holders).
for id in "${JOB_IDS[@]}"; do
  holders=0
  for base in "$N1" "$N2"; do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs/$id")"
    if [ "$code" != "404" ]; then holders=$((holders + 1)); fi
  done
  if [ "$holders" -ne 1 ]; then
    echo "job $id is registered on $holders survivors, want exactly 1" >&2
    exit 1
  fi
  terminal=""
  for i in $(seq 1 200); do
    for base in "$N1" "$N2"; do
      code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs/$id")"
      if [ "$code" = "404" ]; then continue; fi
      if [ "$code" != "200" ]; then
        terminal="http-$code" # error result, e.g. canceled at deadline
        continue
      fi
      status="$(curl -s "$base/v1/jobs/$id" | grep -o '"status": "[^"]*"' | head -1 | cut -d'"' -f4 || true)"
      case "$status" in
        queued|running|"") ;; # still in flight
        *) terminal="$status" ;;
      esac
    done
    if [ -n "$terminal" ]; then break; fi
    sleep 0.3
  done
  if [ -z "$terminal" ]; then
    echo "adopted job $id never reached a terminal state" >&2
    exit 1
  fi
  echo "  job $id: terminal ($terminal) on exactly one survivor"
done
adopted="$(sum_stat jobs_adopted "$N1" "$N2")"
if [ "$adopted" -lt "${#JOB_IDS[@]}" ]; then
  echo "survivors adopted $adopted jobs, want >= ${#JOB_IDS[@]}" >&2
  exit 1
fi
echo "phase 2 OK: 2 takeovers, epoch $epoch, ${#JOB_IDS[@]} jobs adopted exactly once, mid-churn batch clean"

# Phase 3: stale rejoin. Restart n3 on its old journal — which still
# holds the submit records of jobs the survivors adopted — through the
# epoch join handshake. It must be re-admitted at a bumped epoch, drop
# the superseded replayed jobs (the adopter keeps sole ownership), and
# serve fresh work.
/tmp/confserved -addr "127.0.0.1:${PORTS[2]}" -workers 2 \
  -node-id n3 -advertise "http://127.0.0.1:${PORTS[2]}" -join "$N1,$N2" \
  -heartbeat 200ms -suspect-after 2 -dead-after 4 \
  -journal "$WORKDIR/n3/journal.ndjson" >"$WORKDIR/n3/rejoin.out" 2>&1 &
PIDS[2]=$!
wait_http "$N3/readyz" 200 200 || {
  cat "$WORKDIR/n3/rejoin.out" >&2
  exit 1
}
if ! grep -q "joined cluster" "$WORKDIR/n3/rejoin.out"; then
  echo "rejoined n3 never reported the join handshake:" >&2
  cat "$WORKDIR/n3/rejoin.out" >&2
  exit 1
fi
dropped="$(stat_of "$N3" jobs_dropped_stale)"
if [ "$dropped" -lt 1 ]; then
  echo "rejoined n3 dropped $dropped stale jobs, want >= 1" >&2
  exit 1
fi

# The rejoin view converges: all three live nodes agree on an epoch past
# the two deaths plus the join.
for i in $(seq 1 100); do
  e1="$(stat_of "$N1" epoch)"
  e2="$(stat_of "$N2" epoch)"
  e3="$(stat_of "$N3" epoch)"
  if [ "$e1" -ge 3 ] && [ "$e1" = "$e2" ] && [ "$e1" = "$e3" ]; then break; fi
  sleep 0.2
done
if [ "$e1" -lt 3 ] || [ "$e1" != "$e2" ] || [ "$e1" != "$e3" ]; then
  echo "views did not converge after rejoin: n1=$e1 n2=$e2 n3=$e3" >&2
  exit 1
fi

# The dropped IDs still have exactly one cluster-wide holder (the
# adopter); the rejoined node answers 404 for them.
for id in "${JOB_IDS[@]}"; do
  holders=0
  for base in "$N1" "$N2" "$N3"; do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$base/v1/jobs/$id")"
    if [ "$code" != "404" ]; then holders=$((holders + 1)); fi
  done
  if [ "$holders" -ne 1 ]; then
    echo "after rejoin, job $id has $holders holders, want exactly 1" >&2
    exit 1
  fi
done

# The rejoined node serves fresh work as a member.
post="$(curl -sf -X POST "$N3/v1/synthesize?example=1&timeout=60s")"
echo "$post" | grep -q '"status": "sat"' || {
  echo "post-rejoin synthesis via n3 not sat:" >&2
  echo "$post" >&2
  exit 1
}

echo "cluster smoke OK: $forwarded forwarded, $fills peer fills, 2 takeovers, ${#JOB_IDS[@]} jobs adopted exactly once, n3 rejoined at epoch $e3 dropping $dropped stale jobs"
