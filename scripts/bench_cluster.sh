#!/usr/bin/env bash
# Cluster scaling benchmark: the same cache-miss-heavy workload against
# one confserved and against a 3-node cluster, recorded side by side in
# BENCH_serve.json.
#
# The workload is built to thrash a single node honestly: 150 distinct
# problems replayed cyclically against a 64-entry LRU cache is the LRU
# worst case (every arrival evicts the entry that will be needed
# soonest), so the single node re-solves almost every request. The
# cluster gets the same 64 entries per node, but fingerprint routing
# partitions the keyspace three ways — each node only ever sees its ~50
# owned problems, the working set fits the aggregate cache, and every
# replay pass after the first is answered without a solve. -pool-hosts
# grows the networks so a cold solve costs real CPU relative to the
# forwarding hop; the speedup is cache capacity, not core count, so it
# holds even on a single-core runner.
#
# Output: BENCH_serve.json with {serve, cluster_scaling} — the classic
# single-node serve report plus both scaling runs and the speedup.
set -euo pipefail

PORTS=(8761 8762 8763)
PEERS="n1=http://127.0.0.1:${PORTS[0]},n2=http://127.0.0.1:${PORTS[1]},n3=http://127.0.0.1:${PORTS[2]}"
WORKDIR="$(mktemp -d)"
OUT="${1:-BENCH_serve.json}"
REQUESTS=900
PROBLEMS=150
POOL_HOSTS=18
CACHE=64
declare -a PIDS=()

go build -o /tmp/confserved ./cmd/confserved
go build -o /tmp/confload ./cmd/confload

cleanup() {
  for pid in "${PIDS[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

for p in "${PORTS[@]}"; do
  if curl -s -o /dev/null --max-time 1 "http://127.0.0.1:$p/healthz"; then
    echo "port $p is already in use; kill the stale process first" >&2
    exit 1
  fi
done

wait_up() {
  for i in $(seq 1 100); do
    if curl -s -o /dev/null "http://127.0.0.1:$1/healthz"; then return 0; fi
    sleep 0.1
  done
  echo "node on port $1 never came up" >&2
  return 1
}

rps_of() { # json file -> requests_per_sec
  grep -o '"requests_per_sec": [0-9.]*' "$1" | grep -o '[0-9.]*$'
}

# Run 1: the classic serve benchmark (historical workload, in-process
# server) — the number EXPERIMENTS.md has always tracked.
/tmp/confload -clients 8 -requests 400 -problems 12 -json "$WORKDIR/serve.json"

# Run 2: single node, cache-miss-heavy workload.
/tmp/confserved -addr "127.0.0.1:${PORTS[0]}" -workers 2 -cache "$CACHE" >/dev/null 2>&1 &
PIDS+=($!)
wait_up "${PORTS[0]}"
/tmp/confload -addr "http://127.0.0.1:${PORTS[0]}" -clients 12 \
  -requests "$REQUESTS" -problems "$PROBLEMS" -pool-hosts "$POOL_HOSTS" \
  -json "$WORKDIR/single.json"
kill -9 "${PIDS[0]}" 2>/dev/null
sleep 0.3

# Run 3: the same workload against 3 nodes with the same per-node cache.
# Each node runs with a journal, so the measured throughput includes the
# full durability tax: local WAL appends plus shipping every record to
# the two ring successors and waiting out their acks in the background.
PIDS=()
for i in 0 1 2; do
  mkdir -p "$WORKDIR/n$((i + 1))"
  /tmp/confserved -addr "127.0.0.1:${PORTS[$i]}" -workers 2 -cache "$CACHE" \
    -node-id "n$((i + 1))" -peers "$PEERS" \
    -journal "$WORKDIR/n$((i + 1))/journal.ndjson" >/dev/null 2>&1 &
  PIDS+=($!)
done
for p in "${PORTS[@]}"; do wait_up "$p"; done
/tmp/confload -targets "http://127.0.0.1:${PORTS[0]},http://127.0.0.1:${PORTS[1]},http://127.0.0.1:${PORTS[2]}" \
  -clients 12 -requests "$REQUESTS" -problems "$PROBLEMS" -pool-hosts "$POOL_HOSTS" \
  -json "$WORKDIR/cluster.json"

single_rps="$(rps_of "$WORKDIR/single.json")"
cluster_rps="$(rps_of "$WORKDIR/cluster.json")"
speedup="$(awk -v a="$cluster_rps" -v b="$single_rps" 'BEGIN { printf "%.2f", a / b }')"

{
  echo '{'
  echo '  "serve":'
  sed 's/^/  /' "$WORKDIR/serve.json" | sed '$ s/$/,/'
  echo '  "cluster_scaling": {'
  echo "    \"workload\": {\"requests\": $REQUESTS, \"problems\": $PROBLEMS, \"pool_hosts\": $POOL_HOSTS, \"cache_entries_per_node\": $CACHE, \"replicated_wal\": true},"
  echo '    "single_node":'
  sed 's/^/    /' "$WORKDIR/single.json" | sed '$ s/$/,/'
  echo '    "cluster_3node":'
  sed 's/^/    /' "$WORKDIR/cluster.json" | sed '$ s/$/,/'
  echo "    \"speedup_x\": $speedup"
  echo '  }'
  echo '}'
} >"$OUT"

echo "single node: $single_rps req/s, 3-node cluster: $cluster_rps req/s (${speedup}x)"
if awk -v s="$speedup" 'BEGIN { exit !(s >= 2.2) }'; then
  echo "cluster bench OK: ${speedup}x >= 2.2x, report in $OUT"
else
  echo "cluster speedup ${speedup}x is below the 2.2x bar" >&2
  exit 1
fi
