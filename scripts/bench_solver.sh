#!/usr/bin/env sh
# bench_solver.sh — run the solver microbenchmark suite and compare runs.
#
# Usage:
#   scripts/bench_solver.sh                 run benches, save to bench-<rev>.txt
#   scripts/bench_solver.sh old.txt new.txt compare two saved runs
#
# Environment:
#   BENCHTIME   -benchtime value (default 3x; every iteration asserts the
#               expected probe status, so even 1x is a correctness smoke)
#   BENCHFILTER -bench regexp (default 'Solver|PB|SliderSweep|Decomp|BatchSweep';
#               the Decomp pair also runs 500/1000-host sizes when
#               CONFSYNTH_BENCH_LARGE=1)
#   COUNT       -count value (default 1; use >=6 for benchstat significance)
#
# Comparison uses benchstat when it is on PATH and falls back to a plain
# side-by-side diff of the benchmark lines otherwise — nothing is
# downloaded or installed.
set -eu

cd "$(dirname "$0")/.."

if [ "$#" -eq 2 ]; then
    old=$1 new=$2
    if command -v benchstat >/dev/null 2>&1; then
        exec benchstat "$old" "$new"
    fi
    echo "benchstat not found; raw ns/op side by side (old | new):"
    grep '^Benchmark' "$old" | awk '{printf "%-28s %15s ns/op\n", $1, $3}' >/tmp/bench_old.$$
    grep '^Benchmark' "$new" | awk '{printf "%-28s %15s ns/op\n", $1, $3}' >/tmp/bench_new.$$
    paste -d'|' /tmp/bench_old.$$ /tmp/bench_new.$$
    rm -f /tmp/bench_old.$$ /tmp/bench_new.$$
    exit 0
fi

benchtime=${BENCHTIME:-3x}
filter=${BENCHFILTER:-'Solver|PB|SliderSweep|Decomp|BatchSweep'}
count=${COUNT:-1}
rev=$(git rev-parse --short HEAD 2>/dev/null || echo worktree)
out="bench-${rev}.txt"

echo "running -bench '${filter}' -benchtime ${benchtime} -count ${count} -> ${out}"
go test -run '^$' -bench "${filter}" -benchtime "${benchtime}" -count "${count}" -timeout 30m . | tee "${out}"
echo
echo "saved ${out}; compare against another run with:"
echo "  scripts/bench_solver.sh <old>.txt ${out}"
