#!/usr/bin/env bash
# Batch durability smoke: boot confserved with a durable journal, submit
# an async /v1/batch of decomp-mode variants slowed by fault injection,
# kill -9 the server while the batch is mid-flight, restart against the
# same journal, wait for /readyz to flip back to 200, and assert that
# every variant's job still exists under its original ID and reached a
# terminal state exactly once — no lost variants, no duplicates.
set -euo pipefail

ADDR="127.0.0.1:8734"
BASE="http://$ADDR"
WORKDIR="$(mktemp -d)"
JOURNAL="$WORKDIR/journal.ndjson"
VARIANTS=8

go build -o /tmp/confserved ./cmd/confserved

cleanup() {
  kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORKDIR"
}

wait_http() { # url, want_status, tries
  local url="$1" want="$2" tries="${3:-100}" code
  for i in $(seq 1 "$tries"); do
    code="$(curl -s -o /dev/null -w '%{http_code}' "$url" 2>/dev/null || true)"
    if [ "$code" = "$want" ]; then
      return 0
    fi
    sleep 0.1
  done
  echo "$url never returned $want (last: ${code:-none})" >&2
  return 1
}

# Build the batch body: VARIANTS budget variants of a two-department
# decomposable spec (see internal/service's twinSpec).
python3 - "$VARIANTS" >"$WORKDIR/batch.json" <<'EOF'
import json, sys
n = int(sys.argv[1])
spec = """nodes 6 3
link 1 7
link 2 7
link 3 7
link 4 8
link 5 8
link 6 8
link 7 9
link 8 9
services 1
require 1 2
require 4 5
sliders 2.5 5 %d
"""
variants = [{"name": "v%d" % i, "spec": spec % (100 + 10 * i)} for i in range(n)]
print(json.dumps({"mode": "decomp", "variants": variants}))
EOF

# Phase 1: accept the batch, then die. The injected per-solve delay
# stretches every region solve so the kill provably lands while most
# variants are still queued or mid-DAG.
CONFSYNTH_FAULTS="seed=11,sat.solve.delay=1:150ms" \
  /tmp/confserved -addr "$ADDR" -workers 2 -journal "$JOURNAL" &
SERVER_PID=$!
trap cleanup EXIT

wait_http "$BASE/healthz" 200
wait_http "$BASE/readyz" 200

accepted="$(curl -sf -X POST --data-binary @"$WORKDIR/batch.json" "$BASE/v1/batch?async=1")"
job_ids="$(echo "$accepted" | python3 -c '
import json, sys
jobs = json.load(sys.stdin)["jobs"]
for j in jobs:
    print(j["variant"], j["job_id"])
')"
n_accepted="$(echo "$job_ids" | wc -l | tr -d ' ')"
if [ "$n_accepted" -ne "$VARIANTS" ]; then
  echo "batch accepted $n_accepted of $VARIANTS variants:" >&2
  echo "$accepted" >&2
  exit 1
fi

sleep 0.4
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

if [ ! -s "$JOURNAL" ]; then
  echo "journal is empty after the crash" >&2
  exit 1
fi

# Phase 2: restart fault-free on the same journal and let the replay
# drain (readyz 200 means replayPending hit zero).
/tmp/confserved -addr "$ADDR" -workers 2 -journal "$JOURNAL" &
SERVER_PID=$!

wait_http "$BASE/healthz" 200
wait_http "$BASE/readyz" 200 600

# Every variant's job must exist under its original ID and be terminal.
# GET /v1/jobs/{id} on a terminal job returns its Result (status
# sat/unsat) or the failure mapping; a still-running job returns a
# status snapshot — which, after readyz flipped, would be a bug.
fail=0
while read -r variant id; do
  body="$(curl -s "$BASE/v1/jobs/$id")"
  if ! echo "$body" | python3 -c '
import json, sys
r = json.load(sys.stdin)
status = r.get("status", "")
ok = status in ("sat", "unsat") or "error" in r
sys.exit(0 if ok else 1)
'; then
    echo "variant $variant (job $id) not terminal after replay: $body" >&2
    fail=1
  fi
done <<<"$job_ids"
if [ "$fail" -ne 0 ]; then
  exit 1
fi

# No duplication: the service replayed exactly the accepted batch (plus
# nothing), and the terminal counters cover it.
stats="$(curl -sf "$BASE/statsz")"
echo "$stats" | python3 -c "
import json, sys
st = json.load(sys.stdin)
n = $VARIANTS
problems = []
if st['jobs_replayed'] != n:
    problems.append('jobs_replayed = %d, want %d' % (st['jobs_replayed'], n))
terminal = st['jobs_completed'] + st['jobs_failed'] + st['jobs_canceled']
if terminal < n:
    problems.append('terminal jobs = %d, want >= %d' % (terminal, n))
if st['jobs_active'] != 0 or st['queue_depth'] != 0:
    problems.append('work still pending: active=%d queue=%d' % (st['jobs_active'], st['queue_depth']))
if problems:
    print('\n'.join(problems), file=sys.stderr)
    sys.exit(1)
print('replayed=%d terminal=%d region_cache_misses=%d' % (st['jobs_replayed'], terminal, st['region_cache']['misses']))
"

echo "batch smoke OK: $VARIANTS variant(s) accepted, killed mid-batch, replayed to terminal states with no loss or duplication"
