package configsynth_test

import (
	"fmt"

	"configsynth"
)

// ExampleNew synthesizes a design for a two-host network and prints the
// achieved scores.
func ExampleNew() {
	net := configsynth.NewNetwork()
	web := net.AddHost("web")
	db := net.AddHost("db")
	r1 := net.AddRouter("r1")
	r2 := net.AddRouter("r2")
	r3 := net.AddRouter("r3")
	r4 := net.AddRouter("r4")
	for _, pair := range [][2]configsynth.NodeID{
		{web, r1}, {r1, r2}, {r2, r3}, {r3, r4}, {r4, db},
	} {
		if _, err := net.Connect(pair[0], pair[1]); err != nil {
			fmt.Println(err)
			return
		}
	}
	problem := &configsynth.Problem{
		Network:    net,
		Catalog:    configsynth.DefaultCatalog(),
		Flows:      configsynth.AllPairsFlows(net, []configsynth.Service{1}),
		Thresholds: configsynth.Thresholds{IsolationTenths: 100, CostBudget: 20},
	}
	syn, err := configsynth.New(problem)
	if err != nil {
		fmt.Println(err)
		return
	}
	design, err := syn.Solve()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("isolation %.0f, usability %.0f, devices %d\n",
		design.Isolation, design.Usability, design.DeviceCount())
	// Output: isolation 10, usability 0, devices 1
}

// ExampleSynthesizer_Explain shows the unsat-core workflow of the
// paper's Algorithm 1.
func ExampleSynthesizer_Explain() {
	net := configsynth.NewNetwork()
	a := net.AddHost("a")
	b := net.AddHost("b")
	r := net.AddRouter("r")
	_, _ = net.Connect(a, r)
	_, _ = net.Connect(r, b)
	problem := &configsynth.Problem{
		Network: net,
		Catalog: configsynth.DefaultCatalog(),
		Flows:   configsynth.AllPairsFlows(net, []configsynth.Service{1}),
		// Contradictory: full isolation and full usability.
		Thresholds: configsynth.Thresholds{
			IsolationTenths: 100,
			UsabilityTenths: 100,
			CostBudget:      100,
		},
	}
	syn, err := configsynth.New(problem)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := syn.Solve(); configsynth.IsUnsat(err) {
		fmt.Println("unsat as expected")
	}
	ex, err := syn.Explain()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("core size %d, relaxations %d\n", len(ex.Core), len(ex.Relaxations))
	// Output:
	// unsat as expected
	// core size 2, relaxations 3
}

// ExampleVerify validates a synthesized design independently by
// simulating every flow through the placed devices.
func ExampleVerify() {
	problem := configsynth.PaperExample()
	syn, err := configsynth.New(problem)
	if err != nil {
		fmt.Println(err)
		return
	}
	design, err := syn.Solve()
	if err != nil {
		fmt.Println(err)
		return
	}
	result, err := configsynth.Verify(problem, design)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("design valid:", result.OK())
	// Output: design valid: true
}
